#include "tensor/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <new>
#include <sstream>

#include "common/check.h"
#include "common/env.h"
#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "parallel/thread_pool.h"
#include "tensor/arena.h"
#include "tensor/kernel_backend.h"

namespace clfd {

namespace {

std::string ShapeStr(const Matrix& m) {
  return "[" + std::to_string(m.rows()) + "x" + std::to_string(m.cols()) +
         "]";
}

}  // namespace

void Matrix::AllocateStorage() {
  const size_t n = static_cast<size_t>(rows_) * cols_;
  if (n == 0) {
    data_ = nullptr;
    return;
  }
  if (arena::Arena* a = arena::Current()) {
    CLFD_METRIC_COUNT("tensor.alloc.arena_count", 1);
    CLFD_METRIC_COUNT("tensor.alloc.arena_bytes",
                      static_cast<int64_t>(n * sizeof(float)));
    data_ = a->Allocate(n);
    // Release any heap backing from a previous life of this object: data_
    // now points into the arena, and keeping a stale vector would pin
    // memory for as long as the object lives.
    if (!heap_.empty()) std::vector<float>().swap(heap_);
    return;
  }
  // Fault probe: rehearses heap exhaustion on the non-arena path (fires
  // only for resizes that would actually allocate).
  if (heap_.capacity() < n && fault::At("heap.alloc")) throw std::bad_alloc();
  // Count only resizes that actually hit the allocator; re-filling a
  // vector that already has capacity (e.g. the optimizer's recycled
  // gradient buffers) is free and must not inflate the alloc metrics.
  if (heap_.capacity() < n) {
    CLFD_METRIC_COUNT("tensor.alloc.count", 1);
    CLFD_METRIC_COUNT("tensor.alloc.bytes",
                      static_cast<int64_t>(n * sizeof(float)));
  }
  heap_.resize(n);
  data_ = heap_.data();
}

Matrix::Matrix(int rows, int cols, float fill) : rows_(rows), cols_(cols) {
  assert(rows >= 0 && cols >= 0);
  AllocateStorage();
  if (data_ != nullptr) std::fill(data_, data_ + size(), fill);
}

Matrix::Matrix(const Matrix& other)
    : rows_(other.rows_), cols_(other.cols_) {
  AllocateStorage();
  if (data_ != nullptr) {
    std::memcpy(data_, other.data_, static_cast<size_t>(size()) * sizeof(float));
  }
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  AllocateStorage();
  if (data_ != nullptr) {
    std::memcpy(data_, other.data_, static_cast<size_t>(size()) * sizeof(float));
  }
  return *this;
}

void CheckFinite(const Matrix& a, const char* op) {
  if (!check::Enabled()) return;
  for (int i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a[i])) {
      check::Fail(std::string(op) + ": non-finite value " +
                  std::to_string(a[i]) + " at flat index " +
                  std::to_string(i) + " of " + ShapeStr(a) + " result");
    }
  }
}

void CheckShape(bool ok, const char* op, const Matrix& a, const Matrix& b) {
  if (ok || !check::Enabled()) return;
  check::Fail(std::string(op) + ": incompatible shapes " + ShapeStr(a) +
              " vs " + ShapeStr(b));
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows(); ++r) {
    assert(rows[r].size() == rows[0].size());
    std::memcpy(m.row(r), rows[r].data(), rows[r].size() * sizeof(float));
  }
  return m;
}

Matrix Matrix::Xavier(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  float s = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (int i = 0; i < m.size(); ++i) {
    m[i] = static_cast<float>(rng->Uniform(-s, s));
  }
  return m;
}

Matrix Matrix::Randn(int rows, int cols, float stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) {
    m[i] = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
  return m;
}

void Matrix::Fill(float value) {
  if (data_ != nullptr) std::fill(data_, data_ + size(), value);
}

void Matrix::AddInPlace(const Matrix& other) {
  CheckShape(SameShape(other), "Matrix::AddInPlace", *this, other);
  assert(SameShape(other));
  for (int i = 0; i < size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, float s) {
  CheckShape(SameShape(other), "Matrix::AddScaled", *this, other);
  assert(SameShape(other));
  for (int i = 0; i < size(); ++i) data_[i] += s * other.data_[i];
}

void Matrix::Scale(float s) {
  for (int i = 0; i < size(); ++i) data_[i] *= s;
}

void Matrix::CopyRowFrom(const Matrix& src, int src_r, int r) {
  CheckShape(src.cols() == cols_, "Matrix::CopyRowFrom", *this, src);
  assert(src.cols() == cols_);
  std::memcpy(row(r), src.row(src_r), static_cast<size_t>(cols_) * sizeof(float));
}

void EnsureShape(Matrix* out, int rows, int cols, bool zeroed) {
  if (out->rows() == rows && out->cols() == cols) {
    // Reuse in place. Accumulating kernels (the plain matmuls) need the
    // zero start a fresh Matrix would have had; overwrite-style kernels
    // assign every element, so stale contents are unobservable.
    if (zeroed) out->Fill(0.0f);
    return;
  }
  *out = Matrix(rows, cols);
}

void CopyInto(const Matrix& src, Matrix* dst) {
  EnsureShape(dst, src.rows(), src.cols(), /*zeroed=*/false);
  if (dst->size() > 0) {
    std::memcpy(dst->data(), src.data(),
                static_cast<size_t>(src.size()) * sizeof(float));
  }
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  for (int r = 0; r < std::min(rows_, max_rows); ++r) {
    os << (r == 0 ? "[" : " [");
    for (int c = 0; c < std::min(cols_, max_cols); ++c) {
      os << at(r, c) << (c + 1 < std::min(cols_, max_cols) ? ", " : "");
    }
    os << (cols_ > max_cols ? ", ...]" : "]");
  }
  os << (rows_ > max_rows ? ", ...]" : "]");
  return os.str();
}

namespace {

// -1 = read CLFD_PARALLEL_MIN_FLOPS (default 128k flops) on first use.
// Deliberate mutable global: a dispatch *threshold*, not numeric state —
// both kernel paths produce bitwise-identical results, so its value can
// never change what is computed, only where.
// clfd-lint: allow(concurrency-mutable-global) clfd-analyze: allow(semantic-mutable-global)
std::atomic<int64_t> g_matmul_threshold{-1};

// Per-row kernel bodies, shared verbatim by the serial and parallel
// dispatch paths. One compiled function per kernel guarantees the two paths
// perform identical float operations in identical order (same vectorization
// and FMA contraction), which is what makes the bit-exactness tests in
// tests/parallel_test.cc hold by construction rather than by luck.

// Rows [r0, r1) of C = A * B; i-k-j order streams over contiguous rows.
void MatMulRows(const Matrix& a, const Matrix& b, Matrix* c, int r0, int r1) {
  for (int i = r0; i < r1; ++i) {
    const float* arow = a.row(i);
    float* crow = c->row(i);
    for (int k = 0; k < a.cols(); ++k) {
      float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      for (int j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
}

// Rows [r0, r1) of C = A^T * B (row i of C reads column i of A). Each
// output element accumulates over k in ascending order with the same
// zero-skip the historical k-outer loop used, so values are unchanged.
void MatMulTransposeARows(const Matrix& a, const Matrix& b, Matrix* c, int r0,
                          int r1) {
  for (int i = r0; i < r1; ++i) {
    float* crow = c->row(i);
    for (int k = 0; k < a.rows(); ++k) {
      float aki = a.at(k, i);
      if (aki == 0.0f) continue;
      const float* brow = b.row(k);
      for (int j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
}

// Rows [r0, r1) of C = A * B^T; dot-product accumulator per element.
void MatMulTransposeBRows(const Matrix& a, const Matrix& b, Matrix* c, int r0,
                          int r1) {
  for (int i = r0; i < r1; ++i) {
    const float* arow = a.row(i);
    float* crow = c->row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked / simd backend bodies (selected by CurrentKernelBackend()).
//
// Determinism contract (DESIGN.md §12): every backend accumulates each
// output element over k in the same ascending order as the scalar oracle
// above, with one rounded add per term and the oracle's zero-skip control
// flow replicated per row. Register tiles regroup *independent* per-element
// chains for ILP/vectorization — they never re-associate within a chain —
// so every backend is bitwise-equal to scalar on all inputs, including
// signed zeros, denormals, and Infs (tests/kernel_backend_test.cc sweeps
// exactly these). The one exception is NaN *payload* bits: x86 add/mul
// keep one operand's NaN and the compiler may commute FP operands, so
// which payload survives a chain is codegen-dependent — the contract (and
// the test) pins down NaN-ness per element, not NaN bits.
//
// Layout: a kRowTile x kColTile register tile of accumulators per output
// block; the k loop streams A values and one B row slab per iteration. The
// all-rows-nonzero fast path fuses the four row updates into one pass over
// the B slab; when any tile row hits the oracle's zero-skip, the slow path
// applies the skip row by row (same adds, different grouping). Column
// remainders run the oracle's per-row loops over the leftover columns; row
// remainders fall back to the oracle body wholesale.
// ---------------------------------------------------------------------------

// Tile height. DispatchRowRange chunks rows at this grain so full tiles
// form inside every parallel chunk, keeping chunk boundaries a pure
// function of the row count (width- and backend-independent).
constexpr int kRowTile = 4;
// Accumulator tile width: 4 SSE vectors per row, 8 xmm registers total for
// the tile — half the register file, leaving room for the A/B operands.
constexpr int kColTile = 8;
// k-panel length for the blocked backend: one j-tile's B panel
// (kKBlock x kColTile floats = 8 KB) stays L1-resident across the tile.
// The panel split spills accumulators to C between panels — a memory
// round-trip per element, which preserves float bits exactly.
constexpr int kKBlock = 256;

// Rows [r0, r1) of C = A * B, blocked backend.
void MatMulRowsBlocked(const Matrix& a, const Matrix& b, Matrix* c, int r0,
                       int r1) {
  const int kt = a.cols();
  const int n = b.cols();
  int i = r0;
  for (; i + kRowTile <= r1; i += kRowTile) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    float* c0 = c->row(i);
    float* c1 = c->row(i + 1);
    float* c2 = c->row(i + 2);
    float* c3 = c->row(i + 3);
    int jj = 0;
    for (; jj + kColTile <= n; jj += kColTile) {
      for (int kk = 0; kk < kt; kk += kKBlock) {
        const int kend = std::min(kt, kk + kKBlock);
        // Accumulators resume from C (zero-fresh on the first panel), and
        // the final store is an assignment, not an extra add — each
        // element sees exactly one ascending-k chain.
        float acc0[kColTile], acc1[kColTile], acc2[kColTile], acc3[kColTile];
        for (int t = 0; t < kColTile; ++t) {
          acc0[t] = c0[jj + t];
          acc1[t] = c1[jj + t];
          acc2[t] = c2[jj + t];
          acc3[t] = c3[jj + t];
        }
        for (int k = kk; k < kend; ++k) {
          const float* brow = b.row(k) + jj;
          const float v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
          if (v0 != 0.0f && v1 != 0.0f && v2 != 0.0f && v3 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) {
              const float bv = brow[t];
              acc0[t] += v0 * bv;
              acc1[t] += v1 * bv;
              acc2[t] += v2 * bv;
              acc3[t] += v3 * bv;
            }
          } else {
            // Oracle zero-skip per row: a skipped term is no operation at
            // all, not an add of ±0 (which would flush -0 partials and
            // turn 0*Inf into NaN).
            if (v0 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) acc0[t] += v0 * brow[t];
            }
            if (v1 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) acc1[t] += v1 * brow[t];
            }
            if (v2 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) acc2[t] += v2 * brow[t];
            }
            if (v3 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) acc3[t] += v3 * brow[t];
            }
          }
        }
        for (int t = 0; t < kColTile; ++t) {
          c0[jj + t] = acc0[t];
          c1[jj + t] = acc1[t];
          c2[jj + t] = acc2[t];
          c3[jj + t] = acc3[t];
        }
      }
    }
    // Column remainder: the oracle's per-row loops over [jj, n).
    for (int rr = 0; jj < n && rr < kRowTile; ++rr) {
      const float* arow = a.row(i + rr);
      float* crow = c->row(i + rr);
      for (int k = 0; k < kt; ++k) {
        const float aik = arow[k];
        if (aik == 0.0f) continue;
        const float* brow = b.row(k);
        for (int j = jj; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
  if (i < r1) MatMulRows(a, b, c, i, r1);
}

// Rows [r0, r1) of C = A * B, simd backend: the register tiling above with
// __restrict-qualified pointers and fixed trip counts, which is what lets
// the autovectorizer emit packed arithmetic without intrinsics. No k-panel
// split: accumulators live in registers for the whole k sweep (one chain
// per element, same bits).
void MatMulRowsSimd(const Matrix& a, const Matrix& b, Matrix* c, int r0,
                    int r1) {
  const int kt = a.cols();
  const int n = b.cols();
  int i = r0;
  for (; i + kRowTile <= r1; i += kRowTile) {
    const float* __restrict a0 = a.row(i);
    const float* __restrict a1 = a.row(i + 1);
    const float* __restrict a2 = a.row(i + 2);
    const float* __restrict a3 = a.row(i + 3);
    int jj = 0;
    for (; jj + kColTile <= n; jj += kColTile) {
      // Chains start at +0.0f exactly like the oracle's zero-fresh C row.
      float acc0[kColTile] = {0.0f};
      float acc1[kColTile] = {0.0f};
      float acc2[kColTile] = {0.0f};
      float acc3[kColTile] = {0.0f};
      for (int k = 0; k < kt; ++k) {
        const float* __restrict brow = b.row(k) + jj;
        const float v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
        if (v0 != 0.0f && v1 != 0.0f && v2 != 0.0f && v3 != 0.0f) {
          for (int t = 0; t < kColTile; ++t) {
            const float bv = brow[t];
            acc0[t] += v0 * bv;
            acc1[t] += v1 * bv;
            acc2[t] += v2 * bv;
            acc3[t] += v3 * bv;
          }
        } else {
          if (v0 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) acc0[t] += v0 * brow[t];
          }
          if (v1 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) acc1[t] += v1 * brow[t];
          }
          if (v2 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) acc2[t] += v2 * brow[t];
          }
          if (v3 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) acc3[t] += v3 * brow[t];
          }
        }
      }
      float* __restrict c0 = c->row(i) + jj;
      float* __restrict c1 = c->row(i + 1) + jj;
      float* __restrict c2 = c->row(i + 2) + jj;
      float* __restrict c3 = c->row(i + 3) + jj;
      for (int t = 0; t < kColTile; ++t) {
        c0[t] = acc0[t];
        c1[t] = acc1[t];
        c2[t] = acc2[t];
        c3[t] = acc3[t];
      }
    }
    for (int rr = 0; jj < n && rr < kRowTile; ++rr) {
      const float* arow = a.row(i + rr);
      float* crow = c->row(i + rr);
      for (int k = 0; k < kt; ++k) {
        const float aik = arow[k];
        if (aik == 0.0f) continue;
        const float* brow = b.row(k);
        for (int j = jj; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
  if (i < r1) MatMulRows(a, b, c, i, r1);
}

// Rows [r0, r1) of C = A^T * B, blocked backend. Same tiling as MatMul;
// the tile's four A values per k are a.at(k, i..i+3) — contiguous in row k.
void MatMulTransposeARowsBlocked(const Matrix& a, const Matrix& b, Matrix* c,
                                 int r0, int r1) {
  const int kt = a.rows();
  const int n = b.cols();
  int i = r0;
  for (; i + kRowTile <= r1; i += kRowTile) {
    float* c0 = c->row(i);
    float* c1 = c->row(i + 1);
    float* c2 = c->row(i + 2);
    float* c3 = c->row(i + 3);
    int jj = 0;
    for (; jj + kColTile <= n; jj += kColTile) {
      for (int kk = 0; kk < kt; kk += kKBlock) {
        const int kend = std::min(kt, kk + kKBlock);
        float acc0[kColTile], acc1[kColTile], acc2[kColTile], acc3[kColTile];
        for (int t = 0; t < kColTile; ++t) {
          acc0[t] = c0[jj + t];
          acc1[t] = c1[jj + t];
          acc2[t] = c2[jj + t];
          acc3[t] = c3[jj + t];
        }
        for (int k = kk; k < kend; ++k) {
          const float* ak = a.row(k) + i;
          const float* brow = b.row(k) + jj;
          const float v0 = ak[0], v1 = ak[1], v2 = ak[2], v3 = ak[3];
          if (v0 != 0.0f && v1 != 0.0f && v2 != 0.0f && v3 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) {
              const float bv = brow[t];
              acc0[t] += v0 * bv;
              acc1[t] += v1 * bv;
              acc2[t] += v2 * bv;
              acc3[t] += v3 * bv;
            }
          } else {
            if (v0 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) acc0[t] += v0 * brow[t];
            }
            if (v1 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) acc1[t] += v1 * brow[t];
            }
            if (v2 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) acc2[t] += v2 * brow[t];
            }
            if (v3 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) acc3[t] += v3 * brow[t];
            }
          }
        }
        for (int t = 0; t < kColTile; ++t) {
          c0[jj + t] = acc0[t];
          c1[jj + t] = acc1[t];
          c2[jj + t] = acc2[t];
          c3[jj + t] = acc3[t];
        }
      }
    }
    for (int rr = 0; jj < n && rr < kRowTile; ++rr) {
      float* crow = c->row(i + rr);
      for (int k = 0; k < kt; ++k) {
        const float aki = a.at(k, i + rr);
        if (aki == 0.0f) continue;
        const float* brow = b.row(k);
        for (int j = jj; j < n; ++j) crow[j] += aki * brow[j];
      }
    }
  }
  if (i < r1) MatMulTransposeARows(a, b, c, i, r1);
}

// Rows [r0, r1) of C = A^T * B, simd backend.
void MatMulTransposeARowsSimd(const Matrix& a, const Matrix& b, Matrix* c,
                              int r0, int r1) {
  const int kt = a.rows();
  const int n = b.cols();
  int i = r0;
  for (; i + kRowTile <= r1; i += kRowTile) {
    int jj = 0;
    for (; jj + kColTile <= n; jj += kColTile) {
      float acc0[kColTile] = {0.0f};
      float acc1[kColTile] = {0.0f};
      float acc2[kColTile] = {0.0f};
      float acc3[kColTile] = {0.0f};
      for (int k = 0; k < kt; ++k) {
        const float* __restrict ak = a.row(k) + i;
        const float* __restrict brow = b.row(k) + jj;
        const float v0 = ak[0], v1 = ak[1], v2 = ak[2], v3 = ak[3];
        if (v0 != 0.0f && v1 != 0.0f && v2 != 0.0f && v3 != 0.0f) {
          for (int t = 0; t < kColTile; ++t) {
            const float bv = brow[t];
            acc0[t] += v0 * bv;
            acc1[t] += v1 * bv;
            acc2[t] += v2 * bv;
            acc3[t] += v3 * bv;
          }
        } else {
          if (v0 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) acc0[t] += v0 * brow[t];
          }
          if (v1 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) acc1[t] += v1 * brow[t];
          }
          if (v2 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) acc2[t] += v2 * brow[t];
          }
          if (v3 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) acc3[t] += v3 * brow[t];
          }
        }
      }
      float* __restrict c0 = c->row(i) + jj;
      float* __restrict c1 = c->row(i + 1) + jj;
      float* __restrict c2 = c->row(i + 2) + jj;
      float* __restrict c3 = c->row(i + 3) + jj;
      for (int t = 0; t < kColTile; ++t) {
        c0[t] = acc0[t];
        c1[t] = acc1[t];
        c2[t] = acc2[t];
        c3[t] = acc3[t];
      }
    }
    for (int rr = 0; jj < n && rr < kRowTile; ++rr) {
      float* crow = c->row(i + rr);
      for (int k = 0; k < kt; ++k) {
        const float aki = a.at(k, i + rr);
        if (aki == 0.0f) continue;
        const float* brow = b.row(k);
        for (int j = jj; j < n; ++j) crow[j] += aki * brow[j];
      }
    }
  }
  if (i < r1) MatMulTransposeARows(a, b, c, i, r1);
}

// A*B^T is a dot-product kernel: each element is one k-ascending reduction
// chain that cannot be vectorized across k without re-association. The
// tile is therefore kDotTile x kDotTile *independent* chains advanced in
// lockstep — an ILP transform, not a reduction reorder.
constexpr int kDotTile = 4;

// Rows [r0, r1) of C = A * B^T, shared tiled body for blocked and simd
// (the dot tile keeps all state in scalar registers either way; restrict
// adds nothing because every loop already carries a serial dependence).
void MatMulTransposeBRowsTiled(const Matrix& a, const Matrix& b, Matrix* c,
                               int r0, int r1) {
  const int kt = a.cols();
  const int m = b.rows();
  int i = r0;
  for (; i + kDotTile <= r1; i += kDotTile) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    int j = 0;
    for (; j + kDotTile <= m; j += kDotTile) {
      const float* b0 = b.row(j);
      const float* b1 = b.row(j + 1);
      const float* b2 = b.row(j + 2);
      const float* b3 = b.row(j + 3);
      float acc[kDotTile][kDotTile] = {};
      for (int k = 0; k < kt; ++k) {
        const float av0 = a0[k], av1 = a1[k], av2 = a2[k], av3 = a3[k];
        const float bv0 = b0[k], bv1 = b1[k], bv2 = b2[k], bv3 = b3[k];
        acc[0][0] += av0 * bv0;
        acc[0][1] += av0 * bv1;
        acc[0][2] += av0 * bv2;
        acc[0][3] += av0 * bv3;
        acc[1][0] += av1 * bv0;
        acc[1][1] += av1 * bv1;
        acc[1][2] += av1 * bv2;
        acc[1][3] += av1 * bv3;
        acc[2][0] += av2 * bv0;
        acc[2][1] += av2 * bv1;
        acc[2][2] += av2 * bv2;
        acc[2][3] += av2 * bv3;
        acc[3][0] += av3 * bv0;
        acc[3][1] += av3 * bv1;
        acc[3][2] += av3 * bv2;
        acc[3][3] += av3 * bv3;
      }
      for (int r = 0; r < kDotTile; ++r) {
        float* crow = c->row(i + r);
        for (int s = 0; s < kDotTile; ++s) crow[j + s] = acc[r][s];
      }
    }
    // Column remainder: oracle dot loops for the leftover B rows.
    for (int rr = 0; rr < kDotTile; ++rr) {
      const float* arow = a.row(i + rr);
      float* crow = c->row(i + rr);
      for (int jt = j; jt < m; ++jt) {
        const float* brow = b.row(jt);
        float acc1 = 0.0f;
        for (int k = 0; k < kt; ++k) acc1 += arow[k] * brow[k];
        crow[jt] = acc1;
      }
    }
  }
  if (i < r1) MatMulTransposeBRows(a, b, c, i, r1);
}

// Runs body(lo, hi) over [0, rows), splitting across the pool when the
// nominal flop count is worth it. Workers write disjoint row ranges, and
// serial/parallel share the body, so the split never changes results.
// Dispatch is deliberately independent of the pool width: a single-lane
// pool runs the same chunks inline, so the profiler's merged scope tree
// (chunk counts included) is identical at every width — the byte-identical
// deterministic-report guarantee in src/obs/prof.h depends on this.
// Chunks are kRowTile rows (a pure function of the row count, so the
// width-independence above still holds, and backend-independent so the
// deterministic report is also identical across kernel backends): the
// blocked/simd bodies then form full register tiles inside every chunk but
// the last. Which rows share a tile never affects results — a tile groups
// independent per-row chains, it does not mix them.
template <typename Body>
void DispatchRowRange(int rows, int64_t flops, Body body) {
  if (rows > 1 && flops >= MatmulParallelThreshold() &&
      !parallel::ThreadPool::InParallelRegion()) {
    CLFD_METRIC_COUNT("tensor.matmul.parallel_dispatches", 1);
    parallel::ParallelFor(0, rows, kRowTile, [&](int64_t lo, int64_t hi) {
      body(static_cast<int>(lo), static_cast<int>(hi));
    });
  } else {
    body(0, rows);
  }
}

// Matmul-shaped convenience wrapper over DispatchRowRange.
template <typename RowsFn>
void DispatchRows(const Matrix& a, const Matrix& b, Matrix* c, int64_t flops,
                  RowsFn rows_fn) {
  DispatchRowRange(c->rows(), flops, [&](int lo, int hi) {
    rows_fn(a, b, c, lo, hi);
  });
}

}  // namespace

int64_t MatmulParallelThreshold() {
  int64_t t = g_matmul_threshold.load(std::memory_order_relaxed);
  if (t < 0) {
    t = GetEnvInt("CLFD_PARALLEL_MIN_FLOPS", 128 * 1024);
    if (t < 0) t = 0;
    g_matmul_threshold.store(t, std::memory_order_relaxed);
  }
  return t;
}

void SetMatmulParallelThreshold(int64_t flops) {
  g_matmul_threshold.store(std::max<int64_t>(0, flops),
                           std::memory_order_relaxed);
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c) {
  CheckShape(a.cols() == b.rows(), "MatMul", a, b);
  assert(a.cols() == b.rows());
  // One relaxed atomic add per kernel call (not per element), so the
  // counters are always on; 2*M*K*N is the conventional matmul flop count.
  CLFD_METRIC_COUNT("tensor.matmul.calls", 1);
  const int64_t flops = int64_t{2} * a.rows() * a.cols() * b.cols();
  CLFD_METRIC_COUNT("tensor.matmul.flops", flops);
  CLFD_PROF_SCOPE("MatMul");
  obs::prof::AddFlops(flops);
  obs::prof::AddBytes(int64_t{4} *
                      (a.size() + b.size() + int64_t{a.rows()} * b.cols()));
  // The row bodies accumulate into C, so a reused buffer must restart at
  // zero — the state a freshly constructed result had.
  EnsureShape(c, a.rows(), b.cols(), /*zeroed=*/true);
  switch (CurrentKernelBackend()) {
    case KernelBackend::kScalar:
      DispatchRows(a, b, c, flops, MatMulRows);
      break;
    case KernelBackend::kBlocked:
      DispatchRows(a, b, c, flops, MatMulRowsBlocked);
      break;
    case KernelBackend::kSimd:
      DispatchRows(a, b, c, flops, MatMulRowsSimd);
      break;
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulInto(a, b, &c);
  return c;
}

void MatMulTransposeAInto(const Matrix& a, const Matrix& b, Matrix* c) {
  CheckShape(a.rows() == b.rows(), "MatMulTransposeA", a, b);
  assert(a.rows() == b.rows());
  CLFD_METRIC_COUNT("tensor.matmul_ta.calls", 1);
  const int64_t flops = int64_t{2} * a.cols() * a.rows() * b.cols();
  CLFD_METRIC_COUNT("tensor.matmul.flops", flops);
  CLFD_PROF_SCOPE("MatMulTA");
  obs::prof::AddFlops(flops);
  obs::prof::AddBytes(int64_t{4} *
                      (a.size() + b.size() + int64_t{a.cols()} * b.cols()));
  EnsureShape(c, a.cols(), b.cols(), /*zeroed=*/true);
  switch (CurrentKernelBackend()) {
    case KernelBackend::kScalar:
      DispatchRows(a, b, c, flops, MatMulTransposeARows);
      break;
    case KernelBackend::kBlocked:
      DispatchRows(a, b, c, flops, MatMulTransposeARowsBlocked);
      break;
    case KernelBackend::kSimd:
      DispatchRows(a, b, c, flops, MatMulTransposeARowsSimd);
      break;
  }
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulTransposeAInto(a, b, &c);
  return c;
}

void MatMulTransposeBInto(const Matrix& a, const Matrix& b, Matrix* c) {
  CheckShape(a.cols() == b.cols(), "MatMulTransposeB", a, b);
  assert(a.cols() == b.cols());
  CLFD_METRIC_COUNT("tensor.matmul_tb.calls", 1);
  const int64_t flops = int64_t{2} * a.rows() * a.cols() * b.rows();
  CLFD_METRIC_COUNT("tensor.matmul.flops", flops);
  CLFD_PROF_SCOPE("MatMulTB");
  obs::prof::AddFlops(flops);
  obs::prof::AddBytes(int64_t{4} *
                      (a.size() + b.size() + int64_t{a.rows()} * b.rows()));
  // Unlike the accumulating matmuls, every TransposeB body (oracle and
  // tiled) assigns each output element from a fresh dot accumulator, so a
  // reused buffer needs no re-zeroing.
  EnsureShape(c, a.rows(), b.rows(), /*zeroed=*/false);
  if (CurrentKernelBackend() == KernelBackend::kScalar) {
    DispatchRows(a, b, c, flops, MatMulTransposeBRows);
  } else {
    DispatchRows(a, b, c, flops, MatMulTransposeBRowsTiled);
  }
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulTransposeBInto(a, b, &c);
  return c;
}

Matrix Transpose(const Matrix& a) {
  CLFD_METRIC_COUNT("tensor.transpose.calls", 1);
  Matrix t(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) t.at(c, r) = a.at(r, c);
  }
  return t;
}

namespace {

// Elementwise kernels have no cross-element arithmetic, so backends may
// only differ in how the compiler schedules the identical per-element
// expression — the simd variants below just hand it __restrict pointers
// and a hoisted bound. Bitwise equality across backends is structural.

template <typename Fn>
void BinaryInto(const Matrix& a, const Matrix& b, Matrix* c, Fn fn) {
  CheckShape(a.SameShape(b), "Matrix elementwise op", a, b);
  assert(a.SameShape(b));
  CLFD_METRIC_COUNT("tensor.elementwise.calls", 1);
  EnsureShape(c, a.rows(), a.cols(), /*zeroed=*/false);
  if (CurrentKernelBackend() == KernelBackend::kSimd && a.size() > 0) {
    const float* __restrict pa = a.data();
    const float* __restrict pb = b.data();
    float* __restrict pc = c->data();
    const int n = a.size();
    for (int i = 0; i < n; ++i) pc[i] = fn(pa[i], pb[i]);
  } else {
    for (int i = 0; i < a.size(); ++i) (*c)[i] = fn(a[i], b[i]);
  }
}

template <typename Fn>
void UnaryInto(const Matrix& a, Matrix* c, Fn fn) {
  CLFD_METRIC_COUNT("tensor.elementwise.calls", 1);
  EnsureShape(c, a.rows(), a.cols(), /*zeroed=*/false);
  if (CurrentKernelBackend() == KernelBackend::kSimd && a.size() > 0) {
    const float* __restrict pa = a.data();
    float* __restrict pc = c->data();
    const int n = a.size();
    for (int i = 0; i < n; ++i) pc[i] = fn(pa[i]);
  } else {
    for (int i = 0; i < a.size(); ++i) (*c)[i] = fn(a[i]);
  }
}

template <typename Fn>
Matrix Binary(const Matrix& a, const Matrix& b, Fn fn) {
  Matrix c;
  BinaryInto(a, b, &c, fn);
  return c;
}

template <typename Fn>
Matrix Unary(const Matrix& a, Fn fn) {
  Matrix c;
  UnaryInto(a, &c, fn);
  return c;
}

}  // namespace

Matrix Add(const Matrix& a, const Matrix& b) {
  return Binary(a, b, [](float x, float y) { return x + y; });
}
Matrix Sub(const Matrix& a, const Matrix& b) {
  return Binary(a, b, [](float x, float y) { return x - y; });
}
Matrix Mul(const Matrix& a, const Matrix& b) {
  return Binary(a, b, [](float x, float y) { return x * y; });
}
Matrix Div(const Matrix& a, const Matrix& b) {
  return Binary(a, b, [](float x, float y) { return x / y; });
}
Matrix AddScalar(const Matrix& a, float s) {
  return Unary(a, [s](float x) { return x + s; });
}
Matrix MulScalar(const Matrix& a, float s) {
  return Unary(a, [s](float x) { return x * s; });
}

void AddInto(const Matrix& a, const Matrix& b, Matrix* c) {
  BinaryInto(a, b, c, [](float x, float y) { return x + y; });
}
void SubInto(const Matrix& a, const Matrix& b, Matrix* c) {
  BinaryInto(a, b, c, [](float x, float y) { return x - y; });
}
void MulInto(const Matrix& a, const Matrix& b, Matrix* c) {
  BinaryInto(a, b, c, [](float x, float y) { return x * y; });
}
void AddScalarInto(const Matrix& a, float s, Matrix* c) {
  UnaryInto(a, c, [s](float x) { return x + s; });
}
void MulScalarInto(const Matrix& a, float s, Matrix* c) {
  UnaryInto(a, c, [s](float x) { return x * s; });
}

void AddRowBroadcastInto(const Matrix& a, const Matrix& row_vec, Matrix* c) {
  CheckShape(row_vec.rows() == 1 && row_vec.cols() == a.cols(),
             "AddRowBroadcast", a, row_vec);
  assert(row_vec.rows() == 1 && row_vec.cols() == a.cols());
  EnsureShape(c, a.rows(), a.cols(), /*zeroed=*/false);
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    float* crow = c->row(r);
    for (int j = 0; j < a.cols(); ++j) crow[j] = arow[j] + row_vec[j];
  }
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row_vec) {
  Matrix c;
  AddRowBroadcastInto(a, row_vec, &c);
  return c;
}

Matrix Exp(const Matrix& a) {
  return Unary(a, [](float x) { return std::exp(x); });
}
Matrix Log(const Matrix& a) {
  return Unary(a, [](float x) { return std::log(std::max(x, 1e-12f)); });
}
Matrix Pow(const Matrix& a, float p) {
  return Unary(a, [p](float x) { return std::pow(x, p); });
}
Matrix Tanh(const Matrix& a) {
  return Unary(a, [](float x) { return std::tanh(x); });
}
Matrix Sigmoid(const Matrix& a) {
  return Unary(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Matrix Relu(const Matrix& a) {
  return Unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Matrix LeakyRelu(const Matrix& a, float slope) {
  return Unary(a, [slope](float x) { return x > 0.0f ? x : slope * x; });
}

void ExpInto(const Matrix& a, Matrix* c) {
  UnaryInto(a, c, [](float x) { return std::exp(x); });
}
void LogInto(const Matrix& a, Matrix* c) {
  UnaryInto(a, c, [](float x) { return std::log(std::max(x, 1e-12f)); });
}
void PowInto(const Matrix& a, float p, Matrix* c) {
  UnaryInto(a, c, [p](float x) { return std::pow(x, p); });
}
void TanhInto(const Matrix& a, Matrix* c) {
  UnaryInto(a, c, [](float x) { return std::tanh(x); });
}
void SigmoidInto(const Matrix& a, Matrix* c) {
  UnaryInto(a, c, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
void ReluInto(const Matrix& a, Matrix* c) {
  UnaryInto(a, c, [](float x) { return x > 0.0f ? x : 0.0f; });
}
void LeakyReluInto(const Matrix& a, float slope, Matrix* c) {
  UnaryInto(a, c, [slope](float x) { return x > 0.0f ? x : slope * x; });
}

float SumAll(const Matrix& a) {
  double acc = 0.0;
  for (int i = 0; i < a.size(); ++i) acc += a[i];
  return static_cast<float>(acc);
}

float MeanAll(const Matrix& a) {
  return a.size() == 0 ? 0.0f : SumAll(a) / static_cast<float>(a.size());
}

void SumRowsInto(const Matrix& a, Matrix* out) {
  EnsureShape(out, a.rows(), 1, /*zeroed=*/false);
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    double acc = 0.0;
    for (int c = 0; c < a.cols(); ++c) acc += arow[c];
    out->at(r, 0) = static_cast<float>(acc);
  }
}

Matrix SumRows(const Matrix& a) {
  Matrix out;
  SumRowsInto(a, &out);
  return out;
}

Matrix MeanRows(const Matrix& a) {
  Matrix out = SumRows(a);
  if (a.cols() > 0) out.Scale(1.0f / static_cast<float>(a.cols()));
  return out;
}

void SoftmaxRowsInto(const Matrix& a, Matrix* out) {
  CLFD_METRIC_COUNT("tensor.softmax.calls", 1);
  // Nominal cost: max + exp + sum + divide over every element.
  CLFD_METRIC_COUNT("tensor.softmax.flops", int64_t{4} * a.size());
  CLFD_PROF_SCOPE("Softmax");
  obs::prof::AddFlops(int64_t{4} * a.size());
  obs::prof::AddBytes(int64_t{8} * a.size());
  EnsureShape(out, a.rows(), a.cols(), /*zeroed=*/false);
  if (CurrentKernelBackend() == KernelBackend::kSimd) {
    // Same per-row ops in the same order (the max and denom reductions
    // stay ascending-c scalar chains — reordering those would change
    // bits); __restrict lets the exp and divide passes vectorize.
    const int cols = a.cols();
    for (int r = 0; r < a.rows(); ++r) {
      const float* __restrict arow = a.row(r);
      float* __restrict orow = out->row(r);
      float mx = -std::numeric_limits<float>::infinity();
      for (int c = 0; c < cols; ++c) mx = std::max(mx, arow[c]);
      double denom = 0.0;
      for (int c = 0; c < cols; ++c) {
        orow[c] = std::exp(arow[c] - mx);
        denom += orow[c];
      }
      for (int c = 0; c < cols; ++c) {
        orow[c] = static_cast<float>(orow[c] / denom);
      }
    }
    return;
  }
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    float* orow = out->row(r);
    float mx = -std::numeric_limits<float>::infinity();
    for (int c = 0; c < a.cols(); ++c) mx = std::max(mx, arow[c]);
    double denom = 0.0;
    for (int c = 0; c < a.cols(); ++c) {
      orow[c] = std::exp(arow[c] - mx);
      denom += orow[c];
    }
    for (int c = 0; c < a.cols(); ++c) {
      orow[c] = static_cast<float>(orow[c] / denom);
    }
  }
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out;
  SoftmaxRowsInto(a, &out);
  return out;
}

namespace {

// Pointer view over a Matrix vector for the Into concat bodies.
struct BlockPtrs {
  const Matrix* stack[64];
  std::vector<const Matrix*> heap;
  const Matrix* const* data;
  explicit BlockPtrs(const std::vector<Matrix>& blocks) {
    const Matrix** out = stack;
    if (blocks.size() > 64) {
      heap.resize(blocks.size());
      out = heap.data();
    }
    for (size_t i = 0; i < blocks.size(); ++i) out[i] = &blocks[i];
    data = out;
  }
};

}  // namespace

void ConcatRowsInto(const Matrix* const* blocks, int n, Matrix* out) {
  CLFD_METRIC_COUNT("tensor.concat_rows.calls", 1);
  if (n == 0) {
    EnsureShape(out, 0, 0, /*zeroed=*/false);
    return;
  }
  int cols = blocks[0]->cols();
  int rows = 0;
  for (int i = 0; i < n; ++i) {
    CheckShape(blocks[i]->cols() == cols, "ConcatRows", *blocks[0],
               *blocks[i]);
    assert(blocks[i]->cols() == cols);
    rows += blocks[i]->rows();
  }
  EnsureShape(out, rows, cols, /*zeroed=*/false);
  int r = 0;
  for (int i = 0; i < n; ++i) {
    const Matrix& b = *blocks[i];
    for (int br = 0; br < b.rows(); ++br) out->CopyRowFrom(b, br, r++);
  }
}

Matrix ConcatRows(const std::vector<Matrix>& blocks) {
  if (blocks.empty()) {
    CLFD_METRIC_COUNT("tensor.concat_rows.calls", 1);
    return Matrix();
  }
  BlockPtrs ptrs(blocks);
  Matrix out;
  ConcatRowsInto(ptrs.data, static_cast<int>(blocks.size()), &out);
  return out;
}

void SliceRowsInto(const Matrix& a, int begin, int end, Matrix* out) {
  CLFD_METRIC_COUNT("tensor.slice_rows.calls", 1);
  if (check::Enabled() && !(begin >= 0 && begin <= end && end <= a.rows())) {
    check::Fail("SliceRows: range [" + std::to_string(begin) + ", " +
                std::to_string(end) + ") out of bounds for " +
                ShapeStr(a));
  }
  assert(begin >= 0 && begin <= end && end <= a.rows());
  EnsureShape(out, end - begin, a.cols(), /*zeroed=*/false);
  for (int r = begin; r < end; ++r) out->CopyRowFrom(a, r, r - begin);
}

Matrix SliceRows(const Matrix& a, int begin, int end) {
  Matrix out;
  SliceRowsInto(a, begin, end, &out);
  return out;
}

void ConcatColsInto(const Matrix* const* blocks, int n, Matrix* out) {
  CLFD_METRIC_COUNT("tensor.concat_cols.calls", 1);
  if (n == 0) {
    EnsureShape(out, 0, 0, /*zeroed=*/false);
    return;
  }
  int rows = blocks[0]->rows();
  int cols = 0;
  for (int i = 0; i < n; ++i) {
    CheckShape(blocks[i]->rows() == rows, "ConcatCols", *blocks[0],
               *blocks[i]);
    assert(blocks[i]->rows() == rows);
    cols += blocks[i]->cols();
  }
  EnsureShape(out, rows, cols, /*zeroed=*/false);
  int c0 = 0;
  for (int i = 0; i < n; ++i) {
    const Matrix& b = *blocks[i];
    for (int r = 0; r < rows; ++r) {
      std::memcpy(out->row(r) + c0, b.row(r),
                  static_cast<size_t>(b.cols()) * sizeof(float));
    }
    c0 += b.cols();
  }
}

Matrix ConcatCols(const std::vector<Matrix>& blocks) {
  if (blocks.empty()) {
    CLFD_METRIC_COUNT("tensor.concat_cols.calls", 1);
    return Matrix();
  }
  BlockPtrs ptrs(blocks);
  Matrix out;
  ConcatColsInto(ptrs.data, static_cast<int>(blocks.size()), &out);
  return out;
}

void SliceColsInto(const Matrix& a, int begin, int end, Matrix* out) {
  CLFD_METRIC_COUNT("tensor.slice_cols.calls", 1);
  if (check::Enabled() && !(begin >= 0 && begin <= end && end <= a.cols())) {
    check::Fail("SliceCols: range [" + std::to_string(begin) + ", " +
                std::to_string(end) + ") out of bounds for " + ShapeStr(a));
  }
  assert(begin >= 0 && begin <= end && end <= a.cols());
  EnsureShape(out, a.rows(), end - begin, /*zeroed=*/false);
  for (int r = 0; r < a.rows(); ++r) {
    std::memcpy(out->row(r), a.row(r) + begin,
                static_cast<size_t>(end - begin) * sizeof(float));
  }
}

Matrix SliceCols(const Matrix& a, int begin, int end) {
  Matrix out;
  SliceColsInto(a, begin, end, &out);
  return out;
}

namespace {

// Per-row bodies of the fused LSTM kernels, shared by the serial and
// parallel dispatch paths like the matmul bodies above. Every scalar
// statement below mirrors one unfused tensor-op expression (one rounding
// per arithmetic op, no re-association), which is what makes the fused
// path bit-identical to the legacy tape — see the derivation in DESIGN.md
// §9 and the equality tests in tests/nn_test.cc.

void LstmGatesForwardRows(const Matrix& pre, const Matrix& hc_prev, Matrix* hc,
                          Matrix* acts, int r0, int r1) {
  const int h = pre.cols() / 4;
  for (int r = r0; r < r1; ++r) {
    const float* p = pre.row(r);
    const float* hcp = hc_prev.row(r);
    float* out = hc->row(r);
    float* act = acts->row(r);
    for (int j = 0; j < h; ++j) {
      float iv = 1.0f / (1.0f + std::exp(-p[j]));           // Sigmoid
      float fv = 1.0f / (1.0f + std::exp(-p[h + j]));       // Sigmoid
      float gv = std::tanh(p[2 * h + j]);                   // Tanh
      float ov = 1.0f / (1.0f + std::exp(-p[3 * h + j]));   // Sigmoid
      float t1 = fv * hcp[h + j];                           // Mul(f, c_prev)
      float t2 = iv * gv;                                   // Mul(i, g)
      float cv = t1 + t2;                                   // Add
      float tc = std::tanh(cv);                             // Tanh
      out[j] = ov * tc;                                     // Mul -> h_t
      out[h + j] = cv;                                      // c_t
      act[j] = iv;
      act[h + j] = fv;
      act[2 * h + j] = gv;
      act[3 * h + j] = ov;
      act[4 * h + j] = tc;
    }
  }
}

void LstmGatesBackwardRows(const Matrix& gout, const Matrix& acts,
                           const Matrix& hc_prev, Matrix* dpre,
                           Matrix* dhc_prev, int r0, int r1) {
  const int h = dpre->cols() / 4;
  for (int r = r0; r < r1; ++r) {
    const float* g = gout.row(r);
    const float* act = acts.row(r);
    const float* hcp = hc_prev.row(r);
    float* dp = dpre->row(r);
    float* dhp = dhc_prev != nullptr ? dhc_prev->row(r) : nullptr;
    for (int j = 0; j < h; ++j) {
      float iv = act[j], fv = act[h + j], gv = act[2 * h + j];
      float ov = act[3 * h + j], tc = act[4 * h + j];
      float dh = g[j];           // d loss / d h_t
      float dc_ext = g[h + j];   // d loss / d c_t from step t+1 (0 at t=T-1)
      float dov = dh * tc;                       // Mul backward, o side
      float dtc = dh * ov;                       // Mul backward, tanh side
      float dc = dc_ext + dtc * (1.0f - tc * tc);  // Tanh backward into c
      float div_ = dc * gv;                      // Mul(i, g) backward, i
      float dgv = dc * iv;                       // Mul(i, g) backward, g
      float dfv = dc * hcp[h + j];               // Mul(f, c_prev) backward, f
      if (dhp != nullptr) dhp[h + j] += dc * fv;  // ... and the c_prev side
      dp[j] += div_ * iv * (1.0f - iv);          // Sigmoid backward (i)
      dp[h + j] += dfv * fv * (1.0f - fv);       // Sigmoid backward (f)
      dp[2 * h + j] += dgv * (1.0f - gv * gv);   // Tanh backward (g)
      dp[3 * h + j] += dov * ov * (1.0f - ov);   // Sigmoid backward (o)
    }
  }
}

void MatMulTransposeBGateBlockedRows(const Matrix& g, const Matrix& w,
                                     Matrix* acc, int r0, int r1) {
  const int h = w.cols() / 4;
  for (int i = r0; i < r1; ++i) {
    const float* grow = g.row(i);
    float* arow = acc->row(i);
    for (int blk : kLstmGateBackwardOrder) {
      const int k0 = blk * h;
      for (int j = 0; j < w.rows(); ++j) {
        const float* wrow = w.row(j);
        float partial = 0.0f;
        for (int k = 0; k < h; ++k) partial += grow[k0 + k] * wrow[k0 + k];
        arow[j] += partial;
      }
    }
  }
}

void MatMulTransposeATimeBlockedRows(const Matrix& x, const Matrix& g,
                                     int block_rows, Matrix* acc, int r0,
                                     int r1) {
  const int n = g.cols();
  const int t_blocks = x.rows() / block_rows;
  std::vector<float> partial(n);
  for (int i = r0; i < r1; ++i) {
    float* arow = acc->row(i);
    for (int tb = t_blocks - 1; tb >= 0; --tb) {
      std::fill(partial.begin(), partial.end(), 0.0f);
      for (int k = tb * block_rows; k < (tb + 1) * block_rows; ++k) {
        float aki = x.at(k, i);
        if (aki == 0.0f) continue;
        const float* grow = g.row(k);
        for (int j = 0; j < n; ++j) partial[j] += aki * grow[j];
      }
      for (int j = 0; j < n; ++j) arow[j] += partial[j];
    }
  }
}

// ---- Backend variants of the fused LSTM bodies (DESIGN.md §12). The
// elementwise gate bodies differ from scalar only by __restrict (per-
// element math is identical, so bitwise equality is structural); the two
// AddInto matmuls get the same register tiling as the standalone kernels,
// with the oracle's per-block fresh-partial-then-add order preserved per
// element. ----

void LstmGatesForwardRowsSimd(const Matrix& pre, const Matrix& hc_prev,
                              Matrix* hc, Matrix* acts, int r0, int r1) {
  const int h = pre.cols() / 4;
  for (int r = r0; r < r1; ++r) {
    const float* __restrict p = pre.row(r);
    const float* __restrict hcp = hc_prev.row(r);
    float* __restrict out = hc->row(r);
    float* __restrict act = acts->row(r);
    for (int j = 0; j < h; ++j) {
      float iv = 1.0f / (1.0f + std::exp(-p[j]));
      float fv = 1.0f / (1.0f + std::exp(-p[h + j]));
      float gv = std::tanh(p[2 * h + j]);
      float ov = 1.0f / (1.0f + std::exp(-p[3 * h + j]));
      float t1 = fv * hcp[h + j];
      float t2 = iv * gv;
      float cv = t1 + t2;
      float tc = std::tanh(cv);
      out[j] = ov * tc;
      out[h + j] = cv;
      act[j] = iv;
      act[h + j] = fv;
      act[2 * h + j] = gv;
      act[3 * h + j] = ov;
      act[4 * h + j] = tc;
    }
  }
}

void LstmGatesBackwardRowsSimd(const Matrix& gout, const Matrix& acts,
                               const Matrix& hc_prev, Matrix* dpre,
                               Matrix* dhc_prev, int r0, int r1) {
  const int h = dpre->cols() / 4;
  for (int r = r0; r < r1; ++r) {
    const float* __restrict g = gout.row(r);
    const float* __restrict act = acts.row(r);
    const float* __restrict hcp = hc_prev.row(r);
    float* __restrict dp = dpre->row(r);
    float* __restrict dhp = dhc_prev != nullptr ? dhc_prev->row(r) : nullptr;
    for (int j = 0; j < h; ++j) {
      float iv = act[j], fv = act[h + j], gv = act[2 * h + j];
      float ov = act[3 * h + j], tc = act[4 * h + j];
      float dh = g[j];
      float dc_ext = g[h + j];
      float dov = dh * tc;
      float dtc = dh * ov;
      float dc = dc_ext + dtc * (1.0f - tc * tc);
      float div_ = dc * gv;
      float dgv = dc * iv;
      float dfv = dc * hcp[h + j];
      if (dhp != nullptr) dhp[h + j] += dc * fv;
      dp[j] += div_ * iv * (1.0f - iv);
      dp[h + j] += dfv * fv * (1.0f - fv);
      dp[2 * h + j] += dgv * (1.0f - gv * gv);
      dp[3 * h + j] += dov * ov * (1.0f - ov);
    }
  }
}

// Tiled acc += g * w^T per gate block: a kDotTile x kDotTile tile of
// independent fresh-partial chains (ascending k within the block), each
// finished by the oracle's single rounded add into acc.
void MatMulTransposeBGateBlockedRowsTiled(const Matrix& g, const Matrix& w,
                                          Matrix* acc, int r0, int r1) {
  const int h = w.cols() / 4;
  const int m = w.rows();
  int i = r0;
  for (; i + kDotTile <= r1; i += kDotTile) {
    const float* g0 = g.row(i);
    const float* g1 = g.row(i + 1);
    const float* g2 = g.row(i + 2);
    const float* g3 = g.row(i + 3);
    float* o0 = acc->row(i);
    float* o1 = acc->row(i + 1);
    float* o2 = acc->row(i + 2);
    float* o3 = acc->row(i + 3);
    for (int blk : kLstmGateBackwardOrder) {
      const int k0 = blk * h;
      int j = 0;
      for (; j + kDotTile <= m; j += kDotTile) {
        const float* w0 = w.row(j) + k0;
        const float* w1 = w.row(j + 1) + k0;
        const float* w2 = w.row(j + 2) + k0;
        const float* w3 = w.row(j + 3) + k0;
        float p[kDotTile][kDotTile] = {};
        for (int k = 0; k < h; ++k) {
          const float gv0 = g0[k0 + k], gv1 = g1[k0 + k];
          const float gv2 = g2[k0 + k], gv3 = g3[k0 + k];
          const float wv0 = w0[k], wv1 = w1[k], wv2 = w2[k], wv3 = w3[k];
          p[0][0] += gv0 * wv0;
          p[0][1] += gv0 * wv1;
          p[0][2] += gv0 * wv2;
          p[0][3] += gv0 * wv3;
          p[1][0] += gv1 * wv0;
          p[1][1] += gv1 * wv1;
          p[1][2] += gv1 * wv2;
          p[1][3] += gv1 * wv3;
          p[2][0] += gv2 * wv0;
          p[2][1] += gv2 * wv1;
          p[2][2] += gv2 * wv2;
          p[2][3] += gv2 * wv3;
          p[3][0] += gv3 * wv0;
          p[3][1] += gv3 * wv1;
          p[3][2] += gv3 * wv2;
          p[3][3] += gv3 * wv3;
        }
        for (int s = 0; s < kDotTile; ++s) {
          o0[j + s] += p[0][s];
          o1[j + s] += p[1][s];
          o2[j + s] += p[2][s];
          o3[j + s] += p[3][s];
        }
      }
      // Column remainder: oracle per-element dot + add over [j, m).
      for (int rr = 0; rr < kDotTile; ++rr) {
        const float* grow = g.row(i + rr);
        float* arow = acc->row(i + rr);
        for (int jt = j; jt < m; ++jt) {
          const float* wrow = w.row(jt);
          float partial = 0.0f;
          for (int k = 0; k < h; ++k) partial += grow[k0 + k] * wrow[k0 + k];
          arow[jt] += partial;
        }
      }
    }
  }
  if (i < r1) MatMulTransposeBGateBlockedRows(g, w, acc, i, r1);
}

// Tiled acc += x^T * g per descending time block: the MatMul register tile
// over four acc rows (x columns — x.at(k, i..i+3) is contiguous in row k),
// with the oracle's fresh per-block partials and block-end adds.
void MatMulTransposeATimeBlockedRowsTiled(const Matrix& x, const Matrix& g,
                                          int block_rows, Matrix* acc, int r0,
                                          int r1) {
  const int n = g.cols();
  const int t_blocks = x.rows() / block_rows;
  int i = r0;
  for (; i + kRowTile <= r1; i += kRowTile) {
    float* o0 = acc->row(i);
    float* o1 = acc->row(i + 1);
    float* o2 = acc->row(i + 2);
    float* o3 = acc->row(i + 3);
    for (int tb = t_blocks - 1; tb >= 0; --tb) {
      const int kbegin = tb * block_rows;
      const int kend = (tb + 1) * block_rows;
      int jj = 0;
      for (; jj + kColTile <= n; jj += kColTile) {
        float p0[kColTile] = {0.0f};
        float p1[kColTile] = {0.0f};
        float p2[kColTile] = {0.0f};
        float p3[kColTile] = {0.0f};
        for (int k = kbegin; k < kend; ++k) {
          const float* xk = x.row(k) + i;
          const float* grow = g.row(k) + jj;
          const float v0 = xk[0], v1 = xk[1], v2 = xk[2], v3 = xk[3];
          if (v0 != 0.0f && v1 != 0.0f && v2 != 0.0f && v3 != 0.0f) {
            for (int t = 0; t < kColTile; ++t) {
              const float gv = grow[t];
              p0[t] += v0 * gv;
              p1[t] += v1 * gv;
              p2[t] += v2 * gv;
              p3[t] += v3 * gv;
            }
          } else {
            if (v0 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) p0[t] += v0 * grow[t];
            }
            if (v1 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) p1[t] += v1 * grow[t];
            }
            if (v2 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) p2[t] += v2 * grow[t];
            }
            if (v3 != 0.0f) {
              for (int t = 0; t < kColTile; ++t) p3[t] += v3 * grow[t];
            }
          }
        }
        // The oracle adds the whole partial vector unconditionally at
        // block end (even all-zero partials), so no skip here.
        for (int t = 0; t < kColTile; ++t) {
          o0[jj + t] += p0[t];
          o1[jj + t] += p1[t];
          o2[jj + t] += p2[t];
          o3[jj + t] += p3[t];
        }
      }
      // Column remainder: per element, the same fresh ascending-k chain
      // (with the oracle's zero-skip) followed by one add.
      for (int rr = 0; jj < n && rr < kRowTile; ++rr) {
        float* arow = acc->row(i + rr);
        for (int j = jj; j < n; ++j) {
          float partial = 0.0f;
          for (int k = kbegin; k < kend; ++k) {
            const float aki = x.at(k, i + rr);
            if (aki == 0.0f) continue;
            partial += aki * g.at(k, j);
          }
          arow[j] += partial;
        }
      }
    }
  }
  if (i < r1) MatMulTransposeATimeBlockedRows(x, g, block_rows, acc, i, r1);
}

}  // namespace

void LstmGatesForward(const Matrix& pre, const Matrix& hc_prev, Matrix* hc,
                      Matrix* acts) {
  const int h = pre.cols() / 4;
  CheckShape(pre.cols() == 4 * h && hc_prev.rows() == pre.rows() &&
                 hc_prev.cols() == 2 * h,
             "LstmGatesForward", pre, hc_prev);
  assert(pre.cols() % 4 == 0 && hc_prev.rows() == pre.rows() &&
         hc_prev.cols() == 2 * h);
  CLFD_METRIC_COUNT("tensor.lstm_gates.calls", 1);
  // Nominal cost: ~12 unfused elementwise ops over [B x H].
  const int64_t flops = int64_t{12} * pre.rows() * h;
  CLFD_METRIC_COUNT("tensor.lstm_gates.flops", flops);
  CLFD_PROF_SCOPE("LstmGatesForward");
  obs::prof::AddFlops(flops);
  // Reads pre [Bx4H] + hc_prev [Bx2H], writes hc [Bx2H] + acts [Bx5H].
  obs::prof::AddBytes(int64_t{4} * pre.rows() * (13 * h));
  // Both row bodies assign every hc/acts element, so reuse needs no zeroing.
  EnsureShape(hc, pre.rows(), 2 * h, /*zeroed=*/false);
  EnsureShape(acts, pre.rows(), 5 * h, /*zeroed=*/false);
  // scalar and blocked share the scalar body (there is nothing to block in
  // an elementwise kernel); simd gets the __restrict variant.
  const bool simd = CurrentKernelBackend() == KernelBackend::kSimd;
  DispatchRowRange(pre.rows(), flops, [&](int lo, int hi) {
    if (simd) {
      LstmGatesForwardRowsSimd(pre, hc_prev, hc, acts, lo, hi);
    } else {
      LstmGatesForwardRows(pre, hc_prev, hc, acts, lo, hi);
    }
  });
}

void LstmGatesBackward(const Matrix& gout, const Matrix& acts,
                       const Matrix& hc_prev, Matrix* dpre,
                       Matrix* dhc_prev) {
  const int h = dpre->cols() / 4;
  CheckShape(gout.rows() == dpre->rows() && gout.cols() == 2 * h &&
                 acts.rows() == gout.rows() && acts.cols() == 5 * h,
             "LstmGatesBackward", gout, acts);
  assert(gout.rows() == dpre->rows() && gout.cols() == 2 * h &&
         acts.cols() == 5 * h && hc_prev.SameShape(gout));
  assert(dhc_prev == nullptr || dhc_prev->SameShape(gout));
  CLFD_METRIC_COUNT("tensor.lstm_gates.calls", 1);
  const int64_t flops = int64_t{20} * gout.rows() * h;
  CLFD_METRIC_COUNT("tensor.lstm_gates.flops", flops);
  CLFD_PROF_SCOPE("LstmGatesBackward");
  obs::prof::AddFlops(flops);
  // Reads gout [Bx2H] + acts [Bx5H] + hc_prev [Bx2H], writes dpre [Bx4H]
  // and optionally dhc_prev [Bx2H].
  obs::prof::AddBytes(int64_t{4} * gout.rows() *
                      ((13 + (dhc_prev != nullptr ? 2 : 0)) * h));
  const bool simd = CurrentKernelBackend() == KernelBackend::kSimd;
  DispatchRowRange(gout.rows(), flops, [&](int lo, int hi) {
    if (simd) {
      LstmGatesBackwardRowsSimd(gout, acts, hc_prev, dpre, dhc_prev, lo, hi);
    } else {
      LstmGatesBackwardRows(gout, acts, hc_prev, dpre, dhc_prev, lo, hi);
    }
  });
}

void MatMulTransposeBGateBlockedAddInto(const Matrix& g, const Matrix& w,
                                        Matrix* acc) {
  CheckShape(g.cols() == w.cols() && w.cols() % 4 == 0, "MatMulTransposeBGateBlocked",
             g, w);
  assert(g.cols() == w.cols() && w.cols() % 4 == 0);
  assert(acc->rows() == g.rows() && acc->cols() == w.rows());
  CLFD_METRIC_COUNT("tensor.matmul_tb_blocked.calls", 1);
  const int64_t flops = int64_t{2} * g.rows() * g.cols() * w.rows();
  CLFD_METRIC_COUNT("tensor.matmul.flops", flops);
  CLFD_PROF_SCOPE("MatMulTBBlocked");
  obs::prof::AddFlops(flops);
  obs::prof::AddBytes(int64_t{4} * (g.size() + w.size() + acc->size()));
  // The dot tile keeps its chains in scalar registers, so blocked and simd
  // share the tiled body (like MatMulTransposeB).
  const bool tiled = CurrentKernelBackend() != KernelBackend::kScalar;
  DispatchRowRange(g.rows(), flops, [&](int lo, int hi) {
    if (tiled) {
      MatMulTransposeBGateBlockedRowsTiled(g, w, acc, lo, hi);
    } else {
      MatMulTransposeBGateBlockedRows(g, w, acc, lo, hi);
    }
  });
}

void MatMulTransposeATimeBlockedAddInto(const Matrix& x, const Matrix& g,
                                        int block_rows, Matrix* acc) {
  CheckShape(x.rows() == g.rows(), "MatMulTransposeATimeBlocked", x, g);
  assert(x.rows() == g.rows() && block_rows > 0 &&
         x.rows() % block_rows == 0);
  assert(acc->rows() == x.cols() && acc->cols() == g.cols());
  CLFD_METRIC_COUNT("tensor.matmul_ta_blocked.calls", 1);
  const int64_t flops = int64_t{2} * x.cols() * x.rows() * g.cols();
  CLFD_METRIC_COUNT("tensor.matmul.flops", flops);
  CLFD_PROF_SCOPE("MatMulTABlocked");
  obs::prof::AddFlops(flops);
  obs::prof::AddBytes(int64_t{4} * (x.size() + g.size() + acc->size()));
  const bool tiled = CurrentKernelBackend() != KernelBackend::kScalar;
  DispatchRowRange(acc->rows(), flops, [&](int lo, int hi) {
    if (tiled) {
      MatMulTransposeATimeBlockedRowsTiled(x, g, block_rows, acc, lo, hi);
    } else {
      MatMulTransposeATimeBlockedRows(x, g, block_rows, acc, lo, hi);
    }
  });
}

float RowNorm(const Matrix& a, int r) {
  const float* arow = a.row(r);
  double acc = 0.0;
  for (int c = 0; c < a.cols(); ++c) acc += arow[c] * arow[c];
  return static_cast<float>(std::sqrt(acc) + 1e-12);
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  if (!a.SameShape(b)) return std::numeric_limits<float>::infinity();
  float mx = 0.0f;
  for (int i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::abs(a[i] - b[i]));
  }
  return mx;
}

bool HasNonFinite(const Matrix& a) {
  for (int i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a[i])) return true;
  }
  return false;
}

}  // namespace clfd
