#include "encoders/session_encoder.h"

#include <algorithm>
#include <cassert>

#include "obs/prof.h"
#include "parallel/thread_pool.h"
#include "tensor/arena.h"

namespace clfd {

PaddedBatch BuildPaddedBatch(const std::vector<const Session*>& sessions,
                             const Matrix& embeddings) {
  int batch = static_cast<int>(sessions.size());
  int emb_dim = embeddings.cols();
  int max_len = 0;
  for (const Session* s : sessions) max_len = std::max(max_len, s->length());

  PaddedBatch out;
  out.steps.reserve(max_len);
  out.mean_masks.reserve(max_len);
  for (int t = 0; t < max_len; ++t) {
    Matrix step(batch, emb_dim);
    Matrix mask(batch, 1);
    for (int i = 0; i < batch; ++i) {
      const Session& s = *sessions[i];
      if (t < s.length()) {
        int act = s.activities[t];
        assert(act >= 0 && act < embeddings.rows());
        step.CopyRowFrom(embeddings, act, i);
        mask.at(i, 0) = 1.0f / static_cast<float>(s.length());
      }
    }
    out.steps.push_back(std::move(step));
    out.mean_masks.push_back(std::move(mask));
  }
  return out;
}

SessionEncoder::SessionEncoder(int emb_dim, int hidden_dim, int num_layers,
                               Rng* rng)
    : lstm_(emb_dim, hidden_dim, num_layers, rng),
      input_skip_(emb_dim, hidden_dim, rng) {}

std::vector<ag::Var> SessionEncoder::Parameters() const {
  std::vector<ag::Var> params = lstm_.Parameters();
  auto sp = input_skip_.Parameters();
  params.insert(params.end(), sp.begin(), sp.end());
  return params;
}

ag::Var SessionEncoder::EncodeBatch(
    const std::vector<const Session*>& sessions,
    const Matrix& embeddings) const {
  assert(!sessions.empty());
  PaddedBatch padded = BuildPaddedBatch(sessions, embeddings);
  std::vector<ag::Var> steps;
  steps.reserve(padded.steps.size());
  for (Matrix& m : padded.steps) steps.push_back(ag::Constant(std::move(m)));
  std::vector<ag::Var> hiddens = lstm_.Forward(steps);

  // Masked mean over valid timesteps of the final layer.
  ag::Var acc = ag::RowScaleConst(hiddens[0], padded.mean_masks[0]);
  for (size_t t = 1; t < hiddens.size(); ++t) {
    acc = ag::Add(acc, ag::RowScaleConst(hiddens[t], padded.mean_masks[t]));
  }
  // Residual from the masked-mean input embedding.
  ag::Var input_mean =
      ag::RowScaleConst(steps[0], padded.mean_masks[0]);
  for (size_t t = 1; t < steps.size(); ++t) {
    input_mean = ag::Add(
        input_mean, ag::RowScaleConst(steps[t], padded.mean_masks[t]));
  }
  return ag::Add(acc, input_skip_.Forward(input_mean));
}

Matrix SessionEncoder::EncodeDataset(const SessionDataset& dataset,
                                     const Matrix& embeddings,
                                     int chunk) const {
  CLFD_PROF_SCOPE("encode.dataset");
  Matrix out(dataset.size(), hidden_dim());
  if (dataset.size() == 0) return out;
  // Forward-only: concurrent EncodeBatch calls read the shared parameter
  // values but never touch gradients, and each chunk writes its own rows.
  parallel::ParallelFor(0, dataset.size(), chunk, [&](int64_t lo,
                                                      int64_t hi) {
    // Per-chunk bump arena for the forward tape; `out` was allocated
    // before the loop so it stays heap-backed. The encoded rows are
    // copied out before the arena dies with the chunk.
    arena::Arena chunk_arena;
    arena::ScopedArena scope(&chunk_arena);
    int start = static_cast<int>(lo), end = static_cast<int>(hi);
    std::vector<const Session*> batch;
    batch.reserve(end - start);
    for (int i = start; i < end; ++i) {
      batch.push_back(&dataset.sessions[i].session);
    }
    Matrix encoded = EncodeBatch(batch, embeddings).value();
    for (int i = start; i < end; ++i) {
      out.CopyRowFrom(encoded, i - start, i);
    }
  });
  return out;
}

ProjectionHead::ProjectionHead(int in_dim, int out_dim, Rng* rng)
    : fc1_(in_dim, in_dim, rng), fc2_(in_dim, out_dim, rng) {}

ag::Var ProjectionHead::Forward(const ag::Var& z) const {
  return fc2_.Forward(ag::Relu(fc1_.Forward(z)));
}

std::vector<ag::Var> ProjectionHead::Parameters() const {
  std::vector<ag::Var> params = fc1_.Parameters();
  auto p2 = fc2_.Parameters();
  params.insert(params.end(), p2.begin(), p2.end());
  return params;
}

}  // namespace clfd
