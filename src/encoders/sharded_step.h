#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "autograd/var.h"
#include "data/session.h"
#include "encoders/session_encoder.h"
#include "plan/plan.h"
#include "tensor/arena.h"

namespace clfd {

// Shard width for example-level data parallelism in the contrastive
// training loops. Shard boundaries are a function of the batch size and
// this constant alone — never of the thread count — so the per-shard
// padding, the per-shard autograd tapes, and the gradient merge tree are
// identical at any parallel width. Changing this constant changes float
// results in the same benign way changing the batch size does; changing
// CLFD_THREADS never does.
inline constexpr int kExampleShardGrain = 16;

// Data-parallel forward/backward driver for one encoder training step.
//
// The batch is cut into fixed shards of kExampleShardGrain examples. Each
// shard runs the encoder forward on its own autograd tape against a
// *replica* of the encoder (parameter values copied from the live module
// before every step), so shard backward passes touch disjoint gradient
// buffers and need no locks. The loss head — projection + contrastive loss,
// a tiny fraction of the step's flops — is built serially on the
// concatenated shard encodings; its input gradient is then sliced back to
// the shards, each shard resumes its own tape in parallel
// (ag::BackwardWithGrad), and the replica gradients are folded into the
// live module with a fixed balanced tree (parallel/reduce.h). The caller
// clips and steps the optimizer as usual.
class ShardedEncoderTrainer {
 public:
  // `live` must outlive the trainer; replicas mirror its dimensions.
  explicit ShardedEncoderTrainer(SessionEncoder* live);

  // One training step: encodes `sessions`, applies `head` (which must map
  // the [B x hidden] encoding Var to a [1 x 1] loss Var), and leaves the
  // batch's gradients accumulated in the live encoder's parameters and in
  // any live parameters `head` captured. Returns the loss value.
  float Step(const std::vector<const Session*>& sessions,
             const Matrix& embeddings,
             const std::function<ag::Var(const ag::Var&)>& head);

 private:
  void EnsureReplicas(int count);

  SessionEncoder* live_;
  std::vector<std::unique_ptr<SessionEncoder>> replicas_;
  std::vector<std::vector<ag::Var>> replica_params_;
  // One arena per shard tape, recycled every step (Reset at the start of
  // the shard's forward, so the previous step's tape memory is reused
  // without touching the allocator). Replica parameter values and
  // gradients are deliberately heap-backed — allocated in EnsureReplicas
  // outside any arena scope and refreshed in place afterwards — because
  // they must outlive the per-step tapes.
  std::vector<std::unique_ptr<arena::Arena>> shard_arenas_;
  // Plan caches: one per shard replica (keyed by shard rows x max session
  // length, the only shape degrees of freedom of the shard tape) plus one
  // for the serial loss head (keyed by total batch rows). Each shard
  // planner is driven by exactly one pool worker per region and the pool
  // joins order the forward->backward handoff, so no locks are needed.
  // Plans are derived state — a trainer rebuilt on resume just re-captures.
  std::vector<std::unique_ptr<plan::Planner>> shard_planners_;
  plan::Planner head_planner_;
};

}  // namespace clfd

