#pragma once

#include "common/rng.h"
#include "data/session.h"
#include "encoders/session_encoder.h"
#include "recovery/phase.h"

namespace clfd {

// Options for self-supervised SimCLR pre-training of a session encoder with
// the session-reordering augmentation [3] and the NT-Xent loss [50].
struct SimclrOptions {
  int epochs = 10;
  int batch_size = 100;
  float temperature = 0.5f;
  float learning_rate = 0.005f;
  float grad_clip = 5.0f;
  int reorder_sub_len = 3;
  // Prefix for the observability layer: per-epoch NT-Xent loss lands in the
  // "<metric_scope>.loss" series and epoch trace spans carry this name.
  // Must be a string literal (stored, not copied).
  const char* metric_scope = "simclr";
  // Recovery surface (checkpoint/resume + watchdog); null = plain run.
  const recovery::PhaseHooks* hooks = nullptr;
};

// Runs SimCLR pre-training in place on (encoder, projection). Label-free:
// uses only the session sequences, so the result is unaffected by label
// noise — the property the CLFD label corrector builds on (Sec. III-A).
void SimclrPretrain(SessionEncoder* encoder, ProjectionHead* projection,
                    const SessionDataset& train, const Matrix& embeddings,
                    const SimclrOptions& options, Rng* rng);

}  // namespace clfd

