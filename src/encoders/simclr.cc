#include "encoders/simclr.h"

#include "augment/augment.h"
#include "autograd/var.h"
#include "encoders/sharded_step.h"
#include "losses/contrastive.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace clfd {

void SimclrPretrain(SessionEncoder* encoder, ProjectionHead* projection,
                    const SessionDataset& train, const Matrix& embeddings,
                    const SimclrOptions& options, Rng* rng) {
  std::vector<ag::Var> params = encoder->Parameters();
  auto proj_params = projection->Parameters();
  params.insert(params.end(), proj_params.begin(), proj_params.end());
  nn::Adam optimizer(params, options.learning_rate);

#if !defined(CLFD_OBS_FORCE_OFF)
  obs::Series* loss_series = obs::MetricsRegistry::Get().GetSeries(
      std::string(options.metric_scope) + ".loss");
#endif

  ShardedEncoderTrainer trainer(encoder);
  recovery::PhaseBegin(options.hooks, &optimizer);
  const int start_epoch =
      options.hooks != nullptr ? options.hooks->start_epoch : 0;
  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    obs::TraceSpan epoch_span(options.metric_scope);
    CLFD_PROF_SCOPE("simclr.epoch");
    double loss_sum = 0.0;
    int batches = 0;
    for (const auto& batch : train.MakeBatches(options.batch_size, rng)) {
      if (batch.size() < 2) continue;
      const int b = static_cast<int>(batch.size());
      // Two reordering-augmented views per session; rows (i, i + B) pair
      // up. Each view draws from a child stream keyed by its view index —
      // one serial Fork() per batch gives the nonce, Child(view) splits it
      // — so the augmentations are independent of how views are
      // distributed over workers.
      Rng batch_rng = rng->Fork();
      std::vector<Session> augmented(2 * b);
      parallel::ParallelFor(0, 2 * b, kExampleShardGrain,
                            [&](int64_t lo, int64_t hi) {
        for (int64_t v = lo; v < hi; ++v) {
          int idx = batch[static_cast<int>(v) % b];
          Rng view_rng = batch_rng.Child(static_cast<uint64_t>(v));
          augmented[v] = ReorderAugment(train.sessions[idx].session,
                                        &view_rng, options.reorder_sub_len);
        }
      });
      std::vector<const Session*> views;
      views.reserve(augmented.size());
      for (const Session& s : augmented) views.push_back(&s);

      float loss = 0.0f;
      bool ran = recovery::RunStep(
          options.hooks, &optimizer,
          [&]() -> float {
            float batch_loss = trainer.Step(
                views, embeddings, [&](const ag::Var& z) {
                  return NtXentLoss(projection->Forward(z),
                                    options.temperature);
                });
            nn::ClipGradNorm(params, options.grad_clip);
            optimizer.Step();
            return batch_loss;
          },
          &loss);
      if (!ran) continue;
      loss_sum += loss;
      ++batches;
    }
    double epoch_loss = batches > 0 ? loss_sum / batches : 0.0;
    epoch_span.Arg("epoch", epoch);
    epoch_span.Arg("loss", epoch_loss);
#if !defined(CLFD_OBS_FORCE_OFF)
    loss_series->Append(epoch, epoch_loss);
#endif
    CLFD_LOG(DEBUG) << "simclr epoch done"
                    << obs::Kv("scope", options.metric_scope)
                    << obs::Kv("epoch", epoch)
                    << obs::Kv("loss", epoch_loss)
                    << obs::Kv("batches", batches);
    // No loop-local state beyond params/optimizer/rng: batches and
    // augmentations are re-derived from the rng stream each epoch.
    recovery::PhaseEpochEnd(options.hooks, epoch,
                            static_cast<float>(epoch_loss), &optimizer,
                            std::string());
  }
  CLFD_LOG(INFO) << "simclr pretrain done"
                 << obs::Kv("scope", options.metric_scope)
                 << obs::Kv("epochs", options.epochs)
                 << obs::Kv("sessions", train.size());
}

}  // namespace clfd
