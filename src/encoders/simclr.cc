#include "encoders/simclr.h"

#include "augment/augment.h"
#include "autograd/var.h"
#include "losses/contrastive.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace clfd {

void SimclrPretrain(SessionEncoder* encoder, ProjectionHead* projection,
                    const SessionDataset& train, const Matrix& embeddings,
                    const SimclrOptions& options, Rng* rng) {
  std::vector<ag::Var> params = encoder->Parameters();
  auto proj_params = projection->Parameters();
  params.insert(params.end(), proj_params.begin(), proj_params.end());
  nn::Adam optimizer(params, options.learning_rate);

#if !defined(CLFD_OBS_FORCE_OFF)
  obs::Series* loss_series = obs::MetricsRegistry::Get().GetSeries(
      std::string(options.metric_scope) + ".loss");
#endif

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    obs::TraceSpan epoch_span(options.metric_scope);
    double loss_sum = 0.0;
    int batches = 0;
    for (const auto& batch : train.MakeBatches(options.batch_size, rng)) {
      if (batch.size() < 2) continue;
      // Two reordering-augmented views per session; rows (i, i + B) pair up.
      std::vector<Session> augmented;
      augmented.reserve(2 * batch.size());
      for (int pass = 0; pass < 2; ++pass) {
        for (int idx : batch) {
          augmented.push_back(ReorderAugment(train.sessions[idx].session, rng,
                                             options.reorder_sub_len));
        }
      }
      std::vector<const Session*> views;
      views.reserve(augmented.size());
      for (const Session& s : augmented) views.push_back(&s);

      ag::Var z = encoder->EncodeBatch(views, embeddings);
      ag::Var projected = projection->Forward(z);
      ag::Var loss = NtXentLoss(projected, options.temperature);
      ag::Backward(loss);
      nn::ClipGradNorm(params, options.grad_clip);
      optimizer.Step();
      loss_sum += loss.value()[0];
      ++batches;
    }
    double epoch_loss = batches > 0 ? loss_sum / batches : 0.0;
    epoch_span.Arg("epoch", epoch);
    epoch_span.Arg("loss", epoch_loss);
#if !defined(CLFD_OBS_FORCE_OFF)
    loss_series->Append(epoch, epoch_loss);
#endif
    CLFD_LOG(DEBUG) << "simclr epoch done"
                    << obs::Kv("scope", options.metric_scope)
                    << obs::Kv("epoch", epoch)
                    << obs::Kv("loss", epoch_loss)
                    << obs::Kv("batches", batches);
  }
  CLFD_LOG(INFO) << "simclr pretrain done"
                 << obs::Kv("scope", options.metric_scope)
                 << obs::Kv("epochs", options.epochs)
                 << obs::Kv("sessions", train.size());
}

}  // namespace clfd
