#include "encoders/simclr.h"

#include "augment/augment.h"
#include "autograd/var.h"
#include "losses/contrastive.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace clfd {

void SimclrPretrain(SessionEncoder* encoder, ProjectionHead* projection,
                    const SessionDataset& train, const Matrix& embeddings,
                    const SimclrOptions& options, Rng* rng) {
  std::vector<ag::Var> params = encoder->Parameters();
  auto proj_params = projection->Parameters();
  params.insert(params.end(), proj_params.begin(), proj_params.end());
  nn::Adam optimizer(params, options.learning_rate);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (const auto& batch : train.MakeBatches(options.batch_size, rng)) {
      if (batch.size() < 2) continue;
      // Two reordering-augmented views per session; rows (i, i + B) pair up.
      std::vector<Session> augmented;
      augmented.reserve(2 * batch.size());
      for (int pass = 0; pass < 2; ++pass) {
        for (int idx : batch) {
          augmented.push_back(ReorderAugment(train.sessions[idx].session, rng,
                                             options.reorder_sub_len));
        }
      }
      std::vector<const Session*> views;
      views.reserve(augmented.size());
      for (const Session& s : augmented) views.push_back(&s);

      ag::Var z = encoder->EncodeBatch(views, embeddings);
      ag::Var projected = projection->Forward(z);
      ag::Var loss = NtXentLoss(projected, options.temperature);
      ag::Backward(loss);
      nn::ClipGradNorm(params, options.grad_clip);
      optimizer.Step();
    }
  }
}

}  // namespace clfd
