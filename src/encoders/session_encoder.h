#pragma once

#include <vector>

#include "autograd/var.h"
#include "common/rng.h"
#include "data/session.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/module.h"

namespace clfd {

// LSTM session encoder (Sec. III-B1).
//
// Maps a session's raw representation x_i = {x_it} (frozen word2vec activity
// embeddings) to an encoded vector z_i by running a multi-layer LSTM (paper:
// two hidden layers of equal size) and averaging the final layer's hidden
// states over the valid timesteps, plus a linear residual connection from
// the mean input embedding (a randomly initialized deep LSTM otherwise
// attenuates the linearly separable content signal that the paper's
// training scales preserve — see DESIGN.md, "encoder residual"). Batches
// are padded to the longest session; padded positions are excluded from the
// averages and therefore contribute no gradient.
class SessionEncoder : public nn::Module {
 public:
  SessionEncoder(int emb_dim, int hidden_dim, int num_layers, Rng* rng);

  // Encodes a batch of sessions into [B x hidden]. `embeddings` is the
  // [vocab x emb_dim] activity embedding table.
  ag::Var EncodeBatch(const std::vector<const Session*>& sessions,
                      const Matrix& embeddings) const;

  // Inference helper: encodes every session of `dataset` in chunks of
  // `chunk` and returns the [N x hidden] value matrix (no graph retained).
  // Chunks run in parallel on the global pool; chunk boundaries depend only
  // on `chunk`, and chunks write disjoint output rows, so the result is
  // identical at any thread count.
  Matrix EncodeDataset(const SessionDataset& dataset, const Matrix& embeddings,
                       int chunk = 128) const;

  std::vector<ag::Var> Parameters() const override;

  int emb_dim() const { return input_skip_.in_dim(); }
  int hidden_dim() const { return lstm_.hidden_dim(); }
  int num_layers() const { return lstm_.num_layers(); }

 private:
  nn::Lstm lstm_;
  nn::Linear input_skip_;  // mean input embedding -> hidden residual
};

// Two-layer MLP projection head used on top of the encoder during
// contrastive pre-training (SimCLR-style); discarded at inference time.
class ProjectionHead : public nn::Module {
 public:
  ProjectionHead(int in_dim, int out_dim, Rng* rng);

  ag::Var Forward(const ag::Var& z) const;

  std::vector<ag::Var> Parameters() const override;

 private:
  nn::Linear fc1_;
  nn::Linear fc2_;
};

// Builds the time-major padded input steps for a batch of sessions:
// step t is a [B x emb_dim] matrix whose row i holds the embedding of
// session i's t-th activity (zero when t >= length_i). Also returns the
// per-timestep averaging masks (row i of mask t = 1/length_i when valid).
struct PaddedBatch {
  std::vector<Matrix> steps;
  std::vector<Matrix> mean_masks;  // [B x 1] per step
};
PaddedBatch BuildPaddedBatch(const std::vector<const Session*>& sessions,
                             const Matrix& embeddings);

}  // namespace clfd

