#include "encoders/sharded_step.h"

#include <algorithm>
#include <cassert>

#include "nn/module.h"
#include "obs/prof.h"
#include "parallel/reduce.h"
#include "parallel/thread_pool.h"

namespace clfd {

ShardedEncoderTrainer::ShardedEncoderTrainer(SessionEncoder* live)
    : live_(live) {}

void ShardedEncoderTrainer::EnsureReplicas(int count) {
  while (static_cast<int>(replicas_.size()) < count) {
    // The init draws are overwritten by CopyParameterValues every step; the
    // seed only has to make construction deterministic.
    Rng init_rng(0x5eedu + replicas_.size());
    replicas_.push_back(std::make_unique<SessionEncoder>(
        live_->emb_dim(), live_->hidden_dim(), live_->num_layers(),
        &init_rng));
    replica_params_.push_back(replicas_.back()->Parameters());
    // Pre-allocate the replica gradients here, outside any arena scope, so
    // they are heap-backed: the per-step ZeroGrads/EnsureGrad calls then
    // recycle these buffers in place and never touch the shard arena.
    nn::ZeroGrads(replica_params_.back());
    shard_arenas_.push_back(std::make_unique<arena::Arena>());
    shard_planners_.push_back(std::make_unique<plan::Planner>());
  }
}

float ShardedEncoderTrainer::Step(
    const std::vector<const Session*>& sessions, const Matrix& embeddings,
    const std::function<ag::Var(const ag::Var&)>& head) {
  const int batch = static_cast<int>(sessions.size());
  assert(batch > 0);
  CLFD_PROF_SCOPE("encoder.step");
  const int num_shards =
      (batch + kExampleShardGrain - 1) / kExampleShardGrain;
  EnsureReplicas(num_shards);
  std::vector<ag::Var> live_params = live_->Parameters();
  // Make sure the live gradients exist before any arena scope opens, so
  // EnsureGrad during the backward passes finds heap-backed buffers and
  // gradient accumulation survives the per-step arena resets.
  for (ag::Var& p : live_params) p.node()->EnsureGrad();

  // Refresh replica weights from the live module and run the shard
  // forwards, each on its own tape backed by the shard's recycled arena.
  // Shards write disjoint slots. The tape (values and intermediate grads)
  // lives on the arena until the shard's Reset at the start of the *next*
  // step, so the root encodings and the resumed backward below both read
  // valid memory.
  std::vector<ag::Var> shard_roots(num_shards);
  parallel::ParallelFor(0, num_shards, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      int row0 = static_cast<int>(s) * kExampleShardGrain;
      int row1 = std::min(row0 + kExampleShardGrain, batch);
      std::vector<const Session*> shard(sessions.begin() + row0,
                                        sessions.begin() + row1);
      // The shard tape's topology is a function of the shard's row count
      // and its padded (max) session length alone, so those two numbers
      // form the plan key. The arena reset sits inside the plan body so a
      // mismatch fallback reruns the shard from a clean slate.
      int max_len = 0;
      for (const Session* sess : shard) {
        max_len = std::max(max_len, sess->length());
      }
      shard_roots[s] = shard_planners_[s]->ForwardStep(
          plan::MakeKey(static_cast<uint64_t>(row1 - row0),
                        static_cast<uint64_t>(max_len)),
          [&]() -> ag::Var {
            shard_arenas_[s]->Reset();
            arena::ScopedArena tape_scope(shard_arenas_[s].get());
            nn::CopyParameterValues(live_params, replica_params_[s]);
            return replicas_[s]->EncodeBatch(shard, embeddings);
          });
    }
  });

  // Serial loss head on the concatenated encodings. The Param leaf cuts the
  // tape: Backward stops here and deposits dL/dz in the leaf's grad. The
  // head is its own plan stream (forward and backward together: any
  // mismatch throws during forward validation, before gradients move, so
  // the dynamic rerun is safe).
  std::vector<Matrix> shard_values;
  shard_values.reserve(num_shards);
  for (const ag::Var& r : shard_roots) shard_values.push_back(r.value());
  ag::Var z;
  float loss_value = head_planner_.Step(
      plan::MakeKey(static_cast<uint64_t>(batch)), nullptr, [&]() -> float {
        z = ag::Param(ConcatRows(shard_values));
        ag::Var loss = head(z);
        float v = loss.value()[0];
        ag::Backward(loss);
        return v;
      });

  // Resume each shard's tape from its slice of dL/dz, accumulating into
  // the shard replica's private (heap-backed) gradient buffers. The scope
  // re-enters the shard arena *without* resetting it: the forward tape is
  // still live there, and the intermediate tape gradients join it.
  parallel::ParallelFor(0, num_shards, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      int row0 = static_cast<int>(s) * kExampleShardGrain;
      int row1 = std::min(row0 + kExampleShardGrain, batch);
      shard_planners_[s]->BackwardStep([&]() {
        arena::ScopedArena tape_scope(shard_arenas_[s].get());
        ag::BackwardWithGrad(shard_roots[s],
                             SliceRows(z.grad(), row0, row1));
      });
    }
  });

  // Merge: per parameter, fold the shard gradients with a fixed balanced
  // tree, then add to the live gradient. The add order depends only on the
  // shard count, so the merged gradient is thread-count-invariant.
  // Parameters are disjoint buffers, so the merge itself parallelizes.
  const int num_params = static_cast<int>(live_params.size());
  parallel::ParallelFor(0, num_params, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t p = lo; p < hi; ++p) {
      std::vector<Matrix*> slots(num_shards);
      for (int s = 0; s < num_shards; ++s) {
        slots[s] = &replica_params_[s][p].mutable_grad();
      }
      Matrix* total = parallel::TreeReduce(
          &slots, [](Matrix** into, Matrix* from) {
            (*into)->AddInPlace(*from);
          });
      live_params[p].node()->EnsureGrad();
      live_params[p].mutable_grad().AddInPlace(*total);
    }
  });
  return loss_value;
}

}  // namespace clfd
