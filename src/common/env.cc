#include "common/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace clfd {

int GetEnvInt(const std::string& name, int fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  long value = std::strtol(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<int>(value);
}

double GetEnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

std::string GetEnvString(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  return raw == nullptr ? fallback : std::string(raw);
}

bool GetEnvBool(const std::string& name, bool fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  std::string value(raw);
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (value == "1" || value == "true" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "0" || value == "false" || value == "no" || value == "off") {
    return false;
  }
  return fallback;
}

}  // namespace clfd
