#include "common/env.h"

#include <cstdlib>

namespace clfd {

int GetEnvInt(const std::string& name, int fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  long value = std::strtol(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<int>(value);
}

double GetEnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

}  // namespace clfd
