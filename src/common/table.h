#pragma once

#include <string>
#include <vector>

namespace clfd {

// Minimal fixed-width text-table renderer used by the benchmark harness to
// print rows in the same layout as the paper's Tables I-V.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders with column padding and a header separator line.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace clfd

