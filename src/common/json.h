#pragma once

// Minimal zero-dependency JSON reader for tooling: parses the
// google-benchmark --benchmark_out format and the profiler's ToJson output
// into a plain value tree. Writer-side JSON stays hand-rolled at each
// producer (obs/metrics, obs/prof); this is the read side for tools that
// must diff those artifacts (tools/perf_diff).
//
//   json::Value v;
//   std::string err;
//   if (!json::Parse(text, &v, &err)) { ... }
//   const json::Value* benches = v.Find("benchmarks");
//   for (const json::Value& b : benches->array) {
//     double t = b.NumberOr("real_time", 0.0);
//   }
//
// Deliberately small: no writer, no comments, no trailing commas. Numbers
// parse as double (enough for every field we read); object member order is
// preserved, and duplicate keys keep the first occurrence on lookup.

#include <string>
#include <utility>
#include <vector>

namespace clfd {
namespace json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  // Insertion-ordered members; vector-of-pairs keeps the recursive type
  // complete and the iteration order deterministic.
  std::vector<std::pair<std::string, Value>> object;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }

  // Object member lookup; null for non-objects and missing keys.
  const Value* Find(const std::string& key) const;
  // Member `key` as a number / string, or `def` when absent or mistyped.
  double NumberOr(const std::string& key, double def) const;
  std::string StringOr(const std::string& key,
                       const std::string& def) const;
};

// Parses `text` into `*out`. Returns false on malformed input with a
// "line:col: reason" description in `*error` (when non-null). Trailing
// whitespace is allowed; trailing non-whitespace is an error.
bool Parse(const std::string& text, Value* out, std::string* error);

}  // namespace json
}  // namespace clfd
