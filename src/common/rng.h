#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace clfd {

// Deterministic random number generator used throughout the library.
//
// Every stochastic component (dataset simulation, noise injection, parameter
// initialization, batching, mixup sampling) draws from an explicitly seeded
// Rng so that experiments are reproducible run-to-run. The class wraps
// std::mt19937_64 and adds the samplers the paper needs, most notably the
// Beta(beta, beta) sampler used by the mixup strategy (Sec. III-A1).
class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed), engine_(seed) {}

  // Uniform real in [0, 1).
  double Uniform() { return unit_(engine_); }

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * Uniform();
  }

  // Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n) {
    return static_cast<int>(engine_() % static_cast<uint64_t>(n));
  }

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  // Standard normal draw.
  double Gaussian() { return normal_(engine_); }

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // Beta(a, b) draw via two Gamma draws. Used for mixup lambda ~ Beta(b, b).
  double Beta(double a, double b);

  // Geometric-ish session length helper: integer in [lo, hi] inclusive.
  int LengthBetween(int lo, int hi) {
    return lo + UniformInt(hi - lo + 1);
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[UniformInt(i + 1)]);
    }
  }

  // k distinct indices sampled uniformly from [0, n). Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // k indices sampled uniformly from [0, n) with replacement.
  std::vector<int> SampleWithReplacement(int n, int k);

  // Index sampled from an unnormalized non-negative weight vector.
  int SampleDiscrete(const std::vector<double>& weights);

  // Derive an independent child generator (e.g. one per experiment seed).
  // Mutates this generator: consecutive Fork() calls give distinct children.
  Rng Fork() { return Rng(engine_()); }

  // Derive an independent child stream keyed by `key`. Unlike Fork() this is
  // pure: the child depends only on the construction seed and the key, never
  // on how many draws have been made or on the calling thread. The parallel
  // training loops key per-example streams by example index so results are
  // invariant to how examples are distributed over workers (DESIGN.md,
  // "Threading model").
  Rng Child(uint64_t key) const;

  std::mt19937_64& engine() { return engine_; }

  // Exact state capture for checkpointing. The serialized form covers the
  // construction seed (so Child() keys keep resolving to the same streams),
  // the mt19937_64 engine position, and both cached distributions —
  // std::normal_distribution holds a spare Gaussian between draws, so
  // streaming the distributions (not just the engine) is what makes
  // resume-from-checkpoint bitwise-exact. The format is the standard
  // library's own text representation, which round-trips exactly.
  std::string SaveState() const;

  // Restores state captured by SaveState(). Returns false (leaving this
  // generator untouched) if the text does not parse as a full state.
  bool LoadState(const std::string& state);

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace clfd

