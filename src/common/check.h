#pragma once

#include <stdexcept>
#include <string>

namespace clfd {
namespace check {

// Runtime invariant checks for the numeric core: NaN/Inf detection at
// tensor-op boundaries, shape assertions in Matrix/Var kernels, and
// autograd tape misuse detection (backward-twice, building ops on a
// consumed tape). The checks are always compiled in but gated on a single
// relaxed-atomic flag, so a disabled check costs one predictable branch.
//
// The default state comes from the CLFD_CHECK CMake option (compile
// definition CLFD_CHECK): ON builds start enabled, regular builds start
// disabled. Tests flip the flag at runtime with ScopedEnable, so every
// build configuration exercises the checks.
//
// Failures throw InvariantError rather than aborting: the message carries
// op provenance (which kernel, which shapes), and tests can assert that a
// specific misuse fires.

class InvariantError : public std::runtime_error {
 public:
  explicit InvariantError(const std::string& message)
      : std::runtime_error(message) {}
};

// Current state of the global check flag.
bool Enabled();
void SetEnabled(bool on);

// RAII toggle used by tests and by callers that want checks around one
// region only.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : saved_(Enabled()) {
    SetEnabled(on);
  }
  ~ScopedEnable() { SetEnabled(saved_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool saved_;
};

// Throws InvariantError with `message`.
[[noreturn]] void Fail(const std::string& message);

}  // namespace check
}  // namespace clfd
