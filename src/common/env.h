#pragma once

#include <string>

namespace clfd {

// Reads an integer environment variable, returning `fallback` when the
// variable is unset or unparsable. Used by the benchmark harness for scale
// knobs (CLFD_SCALE, CLFD_SEEDS) so the paper's tables can be regenerated at
// reduced or full scale without recompiling.
int GetEnvInt(const std::string& name, int fallback);

// Same for doubles.
double GetEnvDouble(const std::string& name, double fallback);

// Reads a string environment variable, returning `fallback` when unset.
// An empty value counts as set (returns "").
std::string GetEnvString(const std::string& name, const std::string& fallback);

// Reads a boolean environment variable. Accepts 1/0, true/false, yes/no,
// on/off (case-insensitive); anything else falls back.
bool GetEnvBool(const std::string& name, bool fallback);

}  // namespace clfd

