#include "common/table.h"

#include <algorithm>
#include <sstream>

namespace clfd {
namespace {

// Approximate terminal display width: counts UTF-8 code points rather than
// bytes so that the two-byte "±" glyph does not skew column alignment.
size_t DisplayWidth(const std::string& s) {
  size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++width;  // Count non-continuation bytes.
  }
  return width;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = DisplayWidth(header_[c]);
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], DisplayWidth(row[c]));
    }
  }

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c]
         << std::string(widths[c] - DisplayWidth(row[c]) + 2, ' ');
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

}  // namespace clfd
