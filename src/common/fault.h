#pragma once

namespace clfd {
namespace fault {

// Process-wide fault-injection probe points.
//
// Deep layers (the tensor arena, the autograd op boundary, checkpoint IO)
// call fault::At("site.name") at the spots where a real-world failure could
// strike — allocation, stream write, numeric corruption. In production the
// call is one relaxed atomic load of a null pointer and the answer is
// always "no fault". Test harnesses and the CLI's --fault-plan mode install
// an Injector (recovery::FaultPlan) that decides deterministically — from
// per-site hit counts and a seeded Rng, never from wall clock — which probe
// fires.
//
// This header lives in common/ so every layer can host a probe without
// depending on the recovery library that drives the plans.

// Decides whether a probe fires. Implementations must be safe to call from
// any thread (probes sit inside parallel training loops).
class Injector {
 public:
  virtual ~Injector() = default;
  // Called once per probe hit; true means "inject the fault here".
  virtual bool At(const char* site) = 0;
};

// Installs the process-wide injector; nullptr disarms every probe. The
// caller keeps ownership and must clear the injector before destroying it
// (recovery::ScopedFaultPlan does both ends).
void SetInjector(Injector* injector);

// True when an injector is installed.
bool Armed();

// One probe. Returns false immediately (single relaxed load) when no
// injector is installed.
bool At(const char* site);

}  // namespace fault
}  // namespace clfd
