#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace clfd {
namespace json {

const Value* Value::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::NumberOr(const std::string& key, double def) const {
  const Value* v = Find(key);
  return v != nullptr && v->type == Type::kNumber ? v->number : def;
}

std::string Value::StringOr(const std::string& key,
                            const std::string& def) const {
  const Value* v = Find(key);
  return v != nullptr && v->type == Type::kString ? v->str : def;
}

namespace {

// Recursive-descent parser over the raw buffer. Depth is bounded to keep
// hostile inputs from overflowing the stack.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(Value* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& reason) {
    if (error_ != nullptr) {
      int line = 1;
      size_t col = 1;
      for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      *error_ = std::to_string(line) + ":" + std::to_string(col) + ": " +
                reason;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out->type = Value::Type::kNull;
        return Literal("null", 4);
      case 't':
        out->type = Value::Type::kBool;
        out->boolean = true;
        return Literal("true", 4);
      case 'f':
        out->type = Value::Type::kBool;
        out->boolean = false;
        return Literal("false", 5);
      case '"':
        out->type = Value::Type::kString;
        return ParseString(&out->str);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the basic-plane code point; surrogate pairs in
            // our artifacts do not occur (names are ASCII), so a lone
            // surrogate simply encodes as-is.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("bad escape character");
        }
        ++pos_;
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    out->type = Value::Type::kNumber;
    out->number = v;
    return true;
  }

  bool ParseArray(Value* out, int depth) {
    out->type = Value::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      out->array.emplace_back();
      if (!ParseValue(&out->array.back(), depth + 1)) return false;
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(Value* out, int depth) {
    out->type = Value::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected member name");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      out->object.emplace_back(std::move(key), Value{});
      if (!ParseValue(&out->object.back().second, depth + 1)) return false;
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool Parse(const std::string& text, Value* out, std::string* error) {
  *out = Value{};
  return Parser(text, error).Run(out);
}

}  // namespace json
}  // namespace clfd
