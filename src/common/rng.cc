#include "common/rng.h"

#include <cassert>
#include <numeric>
#include <sstream>

namespace clfd {

namespace {

// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::Child(uint64_t key) const {
  // Mix the key before combining so consecutive keys (0, 1, 2, ...) land on
  // unrelated seeds, then mix again so children of consecutive parents
  // differ too.
  return Rng(SplitMix64(seed_ ^ SplitMix64(key + 0x632be59bd9b4e019ULL)));
}

double Rng::Beta(double a, double b) {
  std::gamma_distribution<double> ga(a, 1.0);
  std::gamma_distribution<double> gb(b, 1.0);
  double x = ga(engine_);
  double y = gb(engine_);
  double denom = x + y;
  // Both draws can underflow to zero for very small shape parameters;
  // fall back to a fair coin, which matches the Beta(a, a) -> {0, 1}
  // limiting behaviour as a -> 0.
  if (denom <= 0.0) return Bernoulli(0.5) ? 1.0 : 0.0;
  return x / denom;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(k <= n);
  std::vector<int> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  // Partial Fisher-Yates: the first k slots are a uniform k-subset.
  for (int i = 0; i < k; ++i) {
    int j = i + UniformInt(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

std::vector<int> Rng::SampleWithReplacement(int n, int k) {
  std::vector<int> out(k);
  for (int i = 0; i < k; ++i) out[i] = UniformInt(n);
  return out;
}

std::string Rng::SaveState() const {
  std::ostringstream out;
  // Newline separators keep the three stream-formatted components (which
  // are themselves space-separated integer runs) unambiguous to re-parse.
  out << seed_ << '\n' << engine_ << '\n' << unit_ << '\n' << normal_;
  return out.str();
}

bool Rng::LoadState(const std::string& state) {
  std::istringstream in(state);
  // Parse into temporaries and commit only on full success so a malformed
  // checkpoint can never leave this generator half-restored.
  uint64_t seed = 0;
  std::mt19937_64 engine;
  std::uniform_real_distribution<double> unit;
  std::normal_distribution<double> normal;
  if (!(in >> seed >> engine >> unit >> normal)) return false;
  seed_ = seed;
  engine_ = engine;
  unit_ = unit;
  normal_ = normal;
  return true;
}

int Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace clfd
