#include "common/check.h"

#include <atomic>

namespace clfd {
namespace check {

namespace {

constexpr bool kDefaultEnabled =
#ifdef CLFD_CHECK
    true;
#else
    false;
#endif

// The one mutable global of the invariant layer: the enable latch. Relaxed
// ordering suffices — the flag only gates diagnostics, never data flow.
std::atomic<bool> g_enabled{kDefaultEnabled};  // clfd-lint: allow(concurrency-mutable-global)

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void Fail(const std::string& message) {
  throw InvariantError("clfd invariant violation: " + message);
}

}  // namespace check
}  // namespace clfd
