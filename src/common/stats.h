#pragma once

#include <string>
#include <vector>

namespace clfd {

// Arithmetic mean of v; 0 for an empty vector.
double Mean(const std::vector<double>& v);

// Sample standard deviation (n - 1 denominator); 0 when n < 2.
double StdDev(const std::vector<double>& v);

// Accumulates per-seed scores and renders the paper's "mean +/- std" cells.
class MeanStd {
 public:
  void Add(double value) { values_.push_back(value); }

  double mean() const { return Mean(values_); }
  double std_dev() const { return StdDev(values_); }
  int count() const { return static_cast<int>(values_.size()); }
  const std::vector<double>& values() const { return values_; }

  // Formats "12.34±0.56" with the given number of decimals.
  std::string ToString(int decimals = 2) const;

 private:
  std::vector<double> values_;
};

}  // namespace clfd

