#include "common/stats.h"

#include <cmath>
#include <cstdio>

namespace clfd {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

std::string MeanStd::ToString(int decimals) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", decimals, mean(), decimals,
                std_dev());
  return buf;
}

}  // namespace clfd
