#include "common/fault.h"

#include <atomic>

namespace clfd {
namespace fault {

namespace {

// Armed/disarmed latch for the whole process. Acquire/release ordering so
// a probe that observes the pointer also observes the fully constructed
// injector behind it.
// clfd-lint: allow(concurrency-mutable-global)
std::atomic<Injector*> g_injector{nullptr};

}  // namespace

void SetInjector(Injector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

bool Armed() {
  return g_injector.load(std::memory_order_acquire) != nullptr;
}

bool At(const char* site) {
  Injector* injector = g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return false;
  return injector->At(site);
}

}  // namespace fault
}  // namespace clfd
