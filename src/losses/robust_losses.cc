#include "losses/robust_losses.h"

#include <cassert>
#include <cmath>

namespace clfd {

ag::Var GceLoss(const ag::Var& probs, const Matrix& targets, float q) {
  assert(q > 0.0f && q <= 1.0f);
  assert(probs.rows() == targets.rows() && probs.cols() == targets.cols());
  // sum_k (t_k / q) (1 - p_k^q), averaged over the batch.
  ag::Var one_minus_pq = ag::Scale(ag::AddScalar(ag::Pow(probs, q), -1.0f),
                                   -1.0f);
  ag::Var weighted = ag::Mul(ag::Constant(MulScalar(targets, 1.0f / q)),
                             one_minus_pq);
  return ag::Scale(ag::SumAll(weighted),
                   1.0f / static_cast<float>(probs.rows()));
}

ag::Var CceLoss(const ag::Var& probs, const Matrix& targets) {
  assert(probs.rows() == targets.rows() && probs.cols() == targets.cols());
  ag::Var weighted = ag::Mul(ag::Constant(targets), ag::Log(probs));
  return ag::Scale(ag::SumAll(weighted),
                   -1.0f / static_cast<float>(probs.rows()));
}

ag::Var MaeLoss(const ag::Var& probs, const Matrix& targets) {
  assert(probs.rows() == targets.rows() && probs.cols() == targets.cols());
  ag::Var one_minus_p = ag::Scale(ag::AddScalar(probs, -1.0f), -1.0f);
  ag::Var weighted = ag::Mul(ag::Constant(targets), one_minus_p);
  return ag::Scale(ag::SumAll(weighted),
                   1.0f / static_cast<float>(probs.rows()));
}

float GceLossValueRow(const float* probs, const float* targets, int k,
                      float q) {
  float loss = 0.0f;
  for (int i = 0; i < k; ++i) {
    loss += targets[i] / q * (1.0f - std::pow(probs[i], q));
  }
  return loss;
}

float GceMixupLowerBound(float lambda, float q) {
  float m = std::min(lambda, 1.0f - lambda);
  return m * (2.0f - std::pow(2.0f, 1.0f - q)) / q;
}

float GceMixupUpperBound(float q) { return 1.0f / q; }

}  // namespace clfd
