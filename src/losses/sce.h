#pragma once

#include "autograd/var.h"
#include "tensor/matrix.h"

namespace clfd {

// Symmetric Cross Entropy (Wang et al. [21]) — one of the "other robust
// loss functions" the paper's conclusion proposes exploring in mixup form:
//
//   l_SCE = alpha * CCE(t, p) + beta * RCE(t, p)
//   RCE(t, p) = -sum_k p_k log(t_k), with log(0) clamped to `log_clamp`.
//
// The reverse term is bounded and noise-tolerant; the forward term keeps
// the convergence speed of CCE. Soft (mixup) targets are supported, making
// this the mixup SCE loss when fed interpolated targets.
ag::Var SceLoss(const ag::Var& probs, const Matrix& targets,
                float alpha = 0.1f, float beta = 1.0f,
                float log_clamp = -4.0f);

}  // namespace clfd

