#include "losses/mixup.h"

#include <algorithm>
#include <cassert>

#include "augment/augment.h"

namespace clfd {

Matrix OneHot(const std::vector<int>& labels, int num_classes) {
  Matrix out(static_cast<int>(labels.size()), num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    assert(labels[i] >= 0 && labels[i] < num_classes);
    out.at(static_cast<int>(i), labels[i]) = 1.0f;
  }
  return out;
}

MixupBatch MakeMixupBatch(const Matrix& features,
                          const std::vector<int>& labels,
                          const Matrix& pool_features,
                          const std::vector<int>& pool_labels, double beta,
                          Rng* rng) {
  assert(features.rows() == static_cast<int>(labels.size()));
  assert(pool_features.rows() == static_cast<int>(pool_labels.size()));
  int batch = features.rows();
  int dim = features.cols();

  // Partner candidates per class.
  std::vector<int> by_class[2];
  for (int i = 0; i < pool_features.rows(); ++i) {
    by_class[pool_labels[i] == 1 ? 1 : 0].push_back(i);
  }

  MixupBatch out;
  out.features = Matrix(batch, dim);
  out.targets = Matrix(batch, 2);
  out.lambdas.resize(batch);
  for (int i = 0; i < batch; ++i) {
    int yi = labels[i] == 1 ? 1 : 0;
    const std::vector<int>& opposite = by_class[1 - yi];
    const std::vector<int>& same = by_class[yi];
    int j;
    int yj;
    if (!opposite.empty()) {
      j = opposite[rng->UniformInt(static_cast<int>(opposite.size()))];
      yj = 1 - yi;
    } else if (!same.empty()) {
      j = same[rng->UniformInt(static_cast<int>(same.size()))];
      yj = yi;
    } else {
      j = -1;
      yj = yi;
    }
    // Anchor the interpolation to sample i (lambda >= 0.5, as in standard
    // mixup implementations). Without this, opposite-class partner pools
    // exactly rebalance the noisy-label votes inside the majority cluster
    // and the vote signal vanishes at any uniform noise rate — see
    // DESIGN.md ("mixup anchoring") for the derivation.
    double lambda = SampleMixupLambda(beta, rng);
    lambda = std::max(lambda, 1.0 - lambda);
    out.lambdas[i] = lambda;
    float lf = static_cast<float>(lambda);
    const float* vi = features.row(i);
    float* dst = out.features.row(i);
    if (j >= 0) {
      const float* vj = pool_features.row(j);
      for (int d = 0; d < dim; ++d) dst[d] = lf * vi[d] + (1.0f - lf) * vj[d];
    } else {
      for (int d = 0; d < dim; ++d) dst[d] = vi[d];
    }
    out.targets.at(i, yi) += lf;
    out.targets.at(i, yj) += 1.0f - lf;
  }
  return out;
}

}  // namespace clfd
