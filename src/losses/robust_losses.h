#pragma once

#include "autograd/var.h"
#include "tensor/matrix.h"

namespace clfd {

// Classification losses over softmax outputs (Sec. III-A1).
//
// All functions take `probs` = classifier softmax outputs [B x K] and
// `targets` = (possibly soft) label encodings [B x K], and return the mean
// per-sample loss as a [1 x 1] scalar Var.
//
// The paper's mixup GCE (Eq. 2-3) is GceLoss applied to mixed
// representations and soft mixed targets m_i = lambda e_i + (1-lambda) e_j;
// the interpolation itself lives in losses/mixup.h.

// Generalized Cross Entropy [13], Eq. 1/2:
//   l = sum_k (t_k / q) (1 - p_k^q),  q in (0, 1].
// q -> 0 recovers CCE (Theorem 1), q = 1 is MAE/unhinged.
ag::Var GceLoss(const ag::Var& probs, const Matrix& targets, float q);

// Categorical cross entropy: l = -sum_k t_k log p_k.
ag::Var CceLoss(const ag::Var& probs, const Matrix& targets);

// MAE/unhinged: l = sum_k t_k (1 - p_k).
ag::Var MaeLoss(const ag::Var& probs, const Matrix& targets);

// Non-graph evaluation of the per-sample GCE loss for one row; used by the
// theorem property tests (bounds of Theorem 2 etc.).
float GceLossValueRow(const float* probs, const float* targets, int k,
                      float q);

// Theorem 2 bounds for the mixup GCE per-sample loss with K = 2 classes:
//   min(lambda, 1-lambda) * (2 - 2^(1-q)) / q  <=  l  <=  1 / q.
float GceMixupLowerBound(float lambda, float q);
float GceMixupUpperBound(float q);

}  // namespace clfd

