#pragma once

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace clfd {

// The paper's mixup strategy (Sec. III-A1): for every sample i in a batch,
// a partner j is drawn from the *opposite* (noisy or corrected) class, a
// coefficient lambda ~ Beta(beta, beta) is sampled, and the classifier is
// trained on v^lambda = lambda v_i + (1-lambda) v_j with the soft target
// m = lambda e_i + (1-lambda) e_j. Following standard mixup practice the
// coefficient is anchored to the sample itself (lambda := max(lambda,
// 1-lambda)); DESIGN.md explains why the un-anchored variant cannot learn
// under uniform label noise with opposite-class partner pools.

struct MixupBatch {
  Matrix features;          // [B x d] interpolated representations v^lambda
  Matrix targets;           // [B x 2] interpolated one-hot targets m
  std::vector<double> lambdas;  // per-row interpolation coefficient
};

// Builds a mixup batch for the given feature rows and binary labels.
// `pool_features`/`pool_labels` provide the candidates partners are drawn
// from (typically the full training representation table so every batch can
// find opposite-class partners even under extreme imbalance). Falls back to
// a same-class partner when the opposite class is absent from the pool.
MixupBatch MakeMixupBatch(const Matrix& features,
                          const std::vector<int>& labels,
                          const Matrix& pool_features,
                          const std::vector<int>& pool_labels, double beta,
                          Rng* rng);

// One-hot encodes binary labels into [B x 2].
Matrix OneHot(const std::vector<int>& labels, int num_classes = 2);

}  // namespace clfd

