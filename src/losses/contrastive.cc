#include "losses/contrastive.h"

#include <cassert>

namespace clfd {

namespace {
// Large negative constant added to masked-out similarity entries before the
// row-wise log-sum-exp so they contribute exp(-inf) ~ 0.
constexpr float kMaskValue = -1e9f;
}  // namespace

ag::Var NtXentLoss(const ag::Var& z, float temperature) {
  int n2 = z.rows();
  assert(n2 % 2 == 0 && n2 >= 4);
  int n = n2 / 2;

  ag::Var zn = ag::NormalizeRows(z);
  ag::Var sim = ag::Scale(ag::MatMulTransposeB(zn, zn), 1.0f / temperature);

  // Mask the diagonal out of the denominator.
  Matrix mask(n2, n2);
  for (int i = 0; i < n2; ++i) mask.at(i, i) = kMaskValue;
  ag::Var masked = ag::Add(sim, ag::Constant(mask));

  ag::Var log_denom = ag::Log(ag::SumRows(ag::Exp(masked)));  // [2N x 1]

  // Positive-pair similarities: (i, i+N) and (i+N, i).
  Matrix pos_indicator(n2, n2);
  for (int i = 0; i < n; ++i) {
    pos_indicator.at(i, i + n) = 1.0f;
    pos_indicator.at(i + n, i) = 1.0f;
  }
  ag::Var pos_sim = ag::SumRows(ag::Mul(ag::Constant(pos_indicator), sim));

  ag::Var per_anchor = ag::Sub(log_denom, pos_sim);  // [2N x 1]
  return ag::Scale(ag::SumAll(per_anchor), 1.0f / static_cast<float>(n2));
}

ag::Var SupConLoss(const ag::Var& z, const std::vector<int>& labels,
                   const std::vector<double>& confidences, int num_anchors,
                   float alpha, SupConVariant variant, double tau) {
  int n = z.rows();
  assert(static_cast<int>(labels.size()) == n);
  assert(static_cast<int>(confidences.size()) == n);
  assert(num_anchors > 0 && num_anchors <= n);

  ag::Var zn = ag::NormalizeRows(z);
  // Anchor rows vs. all rows: [R x N] similarity matrix.
  ag::Var anchors = ag::SliceRows(zn, 0, num_anchors);
  ag::Var sim = ag::Scale(ag::MatMulTransposeB(anchors, zn), 1.0f / alpha);

  // Denominator over A(x_i) = all rows except i itself.
  Matrix self_mask(num_anchors, n);
  for (int i = 0; i < num_anchors; ++i) self_mask.at(i, i) = kMaskValue;
  ag::Var log_denom =
      ag::Log(ag::SumRows(ag::Exp(ag::Add(sim, ag::Constant(self_mask)))));

  // Pair weights W[i][p] = weight(i, p) / |B(x_i)| for p in B(x_i).
  Matrix weights(num_anchors, n);
  for (int i = 0; i < num_anchors; ++i) {
    int b_size = 0;
    for (int p = 0; p < n; ++p) {
      if (p != i && labels[p] == labels[i]) ++b_size;
    }
    if (b_size == 0) continue;
    for (int p = 0; p < n; ++p) {
      if (p == i || labels[p] != labels[i]) continue;
      double w = 1.0;
      switch (variant) {
        case SupConVariant::kWeighted:
          w = confidences[i] * confidences[p];
          break;
        case SupConVariant::kUnweighted:
          w = 1.0;
          break;
        case SupConVariant::kFiltered:
          w = confidences[i] * confidences[p] > tau ? 1.0 : 0.0;
          break;
      }
      weights.at(i, p) = static_cast<float>(w / b_size);
    }
  }

  // L = (1/R) sum_i sum_p W_ip (log_denom_i - s_ip).
  Matrix row_weight_sums = SumRows(weights);  // [R x 1]
  ag::Var denom_term =
      ag::SumAll(ag::RowScaleConst(log_denom, row_weight_sums));
  ag::Var pos_term = ag::SumAll(ag::Mul(ag::Constant(weights), sim));
  return ag::Scale(ag::Sub(denom_term, pos_term),
                   1.0f / static_cast<float>(num_anchors));
}

}  // namespace clfd
