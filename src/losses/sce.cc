#include "losses/sce.h"

#include <cassert>
#include <cmath>

namespace clfd {

ag::Var SceLoss(const ag::Var& probs, const Matrix& targets, float alpha,
                float beta, float log_clamp) {
  assert(probs.rows() == targets.rows() && probs.cols() == targets.cols());
  float inv_batch = 1.0f / static_cast<float>(probs.rows());

  // Forward CCE: -sum t log p.
  ag::Var cce = ag::Scale(
      ag::SumAll(ag::Mul(ag::Constant(targets), ag::Log(probs))), -inv_batch);

  // Reverse CE: -sum p log t, with log(t) clamped from below so zero target
  // entries contribute the finite constant `log_clamp` (the A constant of
  // Wang et al.). The target is constant, so log t is precomputed.
  Matrix log_targets(targets.rows(), targets.cols());
  for (int i = 0; i < targets.size(); ++i) {
    log_targets[i] =
        targets[i] > 0.0f
            ? std::max(std::log(targets[i]), log_clamp)
            : log_clamp;
  }
  ag::Var rce = ag::Scale(
      ag::SumAll(ag::Mul(probs, ag::Constant(log_targets))), -inv_batch);

  return ag::Add(ag::Scale(cce, alpha), ag::Scale(rce, beta));
}

}  // namespace clfd
