#pragma once

#include <vector>

#include "autograd/var.h"

namespace clfd {

// Contrastive losses (Sec. III-A pre-training and Sec. III-B1).

// SimCLR NT-Xent loss [50] over 2N projected representations where rows
// (i, i + N) are the two augmented views of session i. Cosine similarities
// with temperature. Returns the mean loss over all 2N anchors.
ag::Var NtXentLoss(const ag::Var& z, float temperature);

// Variants of the supervised contrastive loss analysed in Sec. VII.
enum class SupConVariant {
  kWeighted,    // L_Sup, Eq. 5: pairs weighted by c_i * c_p
  kUnweighted,  // L_Sup^uw, Eq. 18
  kFiltered,    // L_Sup^ftr, Eq. 20: keep pairs with c_i * c_p > tau
};

// The paper's (weighted) supervised contrastive loss, Eq. 5-6.
//
// `z`: [N x d] encoded representations, the first `num_anchors` rows being
// the training batch S and the remaining rows the auxiliary corrected-
// malicious batch S^1. `labels`/`confidences`: corrected labels y-hat and
// corrector confidences c for all N rows. For each anchor i the positive
// set B(x_i) is every other row sharing its label; the contrast set A(x_i)
// is every other row. Pair (i, p) contributes weight * l_Sup(z_i, z_p) with
// l_Sup = -log( exp(cos(z_i, z_p)/alpha) / sum_{j in A} exp(cos(z_i,z_j)/alpha) ).
ag::Var SupConLoss(const ag::Var& z, const std::vector<int>& labels,
                   const std::vector<double>& confidences, int num_anchors,
                   float alpha, SupConVariant variant = SupConVariant::kWeighted,
                   double tau = 0.8);

}  // namespace clfd

