#include "data/noise.h"

#include <cstdio>

namespace clfd {

void ApplyUniformNoise(SessionDataset* dataset, double eta, Rng* rng) {
  for (auto& s : dataset->sessions) {
    s.noisy_label =
        rng->Bernoulli(eta) ? 1 - s.true_label : s.true_label;
  }
}

void ApplyClassDependentNoise(SessionDataset* dataset, double eta10,
                              double eta01, Rng* rng) {
  for (auto& s : dataset->sessions) {
    double flip = s.true_label == kMalicious ? eta10 : eta01;
    s.noisy_label =
        rng->Bernoulli(flip) ? 1 - s.true_label : s.true_label;
  }
}

double ObservedNoiseRate(const SessionDataset& dataset) {
  if (dataset.size() == 0) return 0.0;
  int flipped = 0;
  for (const auto& s : dataset.sessions) {
    flipped += (s.noisy_label != s.true_label);
  }
  return static_cast<double>(flipped) / dataset.size();
}

void NoiseSpec::Apply(SessionDataset* dataset, Rng* rng) const {
  switch (kind) {
    case Kind::kNone:
      for (auto& s : dataset->sessions) s.noisy_label = s.true_label;
      break;
    case Kind::kUniform:
      ApplyUniformNoise(dataset, eta, rng);
      break;
    case Kind::kClassDependent:
      ApplyClassDependentNoise(dataset, eta10, eta01, rng);
      break;
  }
}

std::string NoiseSpec::ToString() const {
  char buf[64];
  switch (kind) {
    case Kind::kNone:
      return "clean";
    case Kind::kUniform:
      std::snprintf(buf, sizeof(buf), "uniform(eta=%.2f)", eta);
      return buf;
    case Kind::kClassDependent:
      std::snprintf(buf, sizeof(buf), "class-dep(eta10=%.2f,eta01=%.2f)",
                    eta10, eta01);
      return buf;
  }
  return "?";
}

}  // namespace clfd
