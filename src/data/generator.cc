#include "data/generator.h"

#include <cassert>

namespace clfd {

Session GenerateFromTemplate(const SessionTemplate& tmpl, int profile_id,
                             Rng* rng) {
  Session session;
  session.profile = profile_id;
  for (const Phase& phase : tmpl.phases) {
    assert(phase.activities.size() == phase.weights.size());
    int len = rng->LengthBetween(phase.min_len, phase.max_len);
    for (int i = 0; i < len; ++i) {
      int act = phase.activities[rng->SampleDiscrete(phase.weights)];
      if (!tmpl.distractor_pool.empty() &&
          rng->Bernoulli(tmpl.distractor_prob)) {
        act = tmpl.distractor_pool[rng->UniformInt(
            static_cast<int>(tmpl.distractor_pool.size()))];
      }
      session.activities.push_back(act);
    }
  }
  return session;
}

Session TemplateMixture::Sample(Rng* rng) const {
  assert(!templates.empty() && templates.size() == weights.size());
  int idx = rng->SampleDiscrete(weights);
  return GenerateFromTemplate(templates[idx], idx, rng);
}

void GenerateSessions(const TemplateMixture& mixture, int count, int label,
                      std::vector<LabeledSession>* out, Rng* rng) {
  for (int i = 0; i < count; ++i) {
    LabeledSession ls;
    ls.session = mixture.Sample(rng);
    ls.true_label = label;
    ls.noisy_label = label;
    out->push_back(std::move(ls));
  }
}

}  // namespace clfd
