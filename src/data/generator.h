#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/session.h"

namespace clfd {

// Phase-template session generator.
//
// The three dataset simulators express user behaviour as *session
// templates*: a session is a concatenation of phases, each phase drawing a
// random number of activities from a weighted bag. Phase ordering gives the
// sequential structure that the LSTM encoders exploit (e.g. "night logon ->
// usb burst -> leak upload -> logoff"), while weighted bags plus a global
// distractor pool provide the session-diversity and vocabulary-overlap
// properties the paper's fraud datasets have.

// One phase of a session: draws between min_len and max_len activities from
// the weighted bag {activities, weights}.
struct Phase {
  std::vector<int> activities;
  std::vector<double> weights;
  int min_len = 1;
  int max_len = 1;
};

// A full behavioural profile.
struct SessionTemplate {
  std::string name;
  std::vector<Phase> phases;
  // Per-activity probability of replacing the drawn activity with a
  // distractor from the shared pool (vocabulary overlap / noise).
  double distractor_prob = 0.0;
  std::vector<int> distractor_pool;
};

// Samples one session from the template.
Session GenerateFromTemplate(const SessionTemplate& tmpl, int profile_id,
                             Rng* rng);

// A mixture of templates with selection weights; used for "normal users are
// a mixture of roles" and "malicious users follow one of several attack
// scenarios".
struct TemplateMixture {
  std::vector<SessionTemplate> templates;
  std::vector<double> weights;  // same length as templates

  Session Sample(Rng* rng) const;
};

// Generates `count` sessions with the given ground-truth label into `out`.
void GenerateSessions(const TemplateMixture& mixture, int count, int label,
                      std::vector<LabeledSession>* out, Rng* rng);

}  // namespace clfd

