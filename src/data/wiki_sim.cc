#include "data/sim_common.h"
#include "data/simulators.h"

namespace clfd {
namespace {

using sim_internal::BuildSimulatedData;
using sim_internal::MakePhase;

// UMD-Wikipedia edit-session vocabulary: per-edit features recorded by the
// VEWS vandal early-warning dataset [15] (page type, edit speed, whether a
// summary was given, community reactions).
enum WikiActivity : int {
  kEditMinor = 0,
  kEditMajor,
  kEditTalk,
  kEditUserPage,
  kCreatePage,
  kRevertOwn,
  kRevertedByOther,
  kEditCategory,
  kUploadMedia,
  kAddReference,
  kBlankSection,
  kInsertLinkSpam,
  kEditPopularPage,
  kEditObscurePage,
  kRapidConsecutive,
  kNewPageRedirect,
  kSummaryPresent,
  kSummaryAbsent,
  kWarnReceived,
  kReadArticle,
  kWikiVocabSize
};

std::vector<std::string> WikiVocab() {
  return {"edit_minor",       "edit_major",     "edit_talk",
          "edit_user_page",   "create_page",    "revert_own",
          "reverted_by_other", "edit_category", "upload_media",
          "add_reference",    "blank_section",  "insert_link_spam",
          "edit_popular_page", "edit_obscure_page", "rapid_consecutive_edit",
          "new_page_redirect", "summary_present", "summary_absent",
          "warn_received",    "read_article"};
}

std::vector<int> WikiDistractors() {
  return {kEditMinor, kEditMajor, kReadArticle, kEditPopularPage,
          kEditObscurePage, kSummaryPresent, kSummaryAbsent};
}

TemplateMixture WikiNormalMixture() {
  TemplateMixture mix;

  SessionTemplate contributor;
  contributor.name = "content_contributor";
  contributor.phases = {
      MakePhase({{kReadArticle, 2.0}, {kEditTalk, 0.8}}, 1, 4),
      MakePhase({{kEditMajor, 2.5},
                 {kAddReference, 2.0},
                 {kSummaryPresent, 2.5},
                 {kEditMinor, 1.0},
                 {kEditPopularPage, 1.0},
                 {kEditObscurePage, 0.8},
                 {kRevertOwn, 0.3}},
                6, 18),
      MakePhase({{kEditTalk, 1.5}, {kReadArticle, 1.0}}, 1, 4)};
  contributor.distractor_prob = 0.05;
  contributor.distractor_pool = WikiDistractors();

  SessionTemplate gnome;
  gnome.name = "wiki_gnome";
  gnome.phases = {
      MakePhase({{kReadArticle, 1.5}}, 1, 3),
      MakePhase({{kEditMinor, 3.0},
                 {kEditCategory, 2.0},
                 {kSummaryPresent, 2.5},
                 {kEditObscurePage, 1.5},
                 {kAddReference, 0.8}},
                8, 22)};
  gnome.distractor_prob = 0.05;
  gnome.distractor_pool = WikiDistractors();

  SessionTemplate discussant;
  discussant.name = "discussant";
  discussant.phases = {
      MakePhase({{kReadArticle, 2.0}}, 1, 4),
      MakePhase({{kEditTalk, 3.0},
                 {kEditUserPage, 1.5},
                 {kSummaryPresent, 1.5},
                 {kEditMinor, 0.8}},
                5, 14)};
  discussant.distractor_prob = 0.05;
  discussant.distractor_pool = WikiDistractors();

  SessionTemplate uploader;
  uploader.name = "media_uploader";
  uploader.phases = {
      MakePhase({{kReadArticle, 1.0}}, 1, 2),
      MakePhase({{kUploadMedia, 2.5},
                 {kEditMajor, 1.2},
                 {kCreatePage, 0.8},
                 {kSummaryPresent, 2.0},
                 {kEditCategory, 1.0}},
                5, 14)};
  uploader.distractor_prob = 0.05;
  uploader.distractor_pool = WikiDistractors();

  mix.templates = {contributor, gnome, discussant, uploader};
  mix.weights = {0.35, 0.3, 0.2, 0.15};
  return mix;
}

TemplateMixture WikiMaliciousMixture() {
  TemplateMixture mix;

  // Spree vandal: fast, unexplained edits on visible pages, quickly
  // reverted and warned.
  SessionTemplate spree;
  spree.name = "spree_vandal";
  spree.phases = {
      MakePhase({{kEditPopularPage, 2.5},
                 {kRapidConsecutive, 3.0},
                 {kBlankSection, 2.0},
                 {kSummaryAbsent, 2.5},
                 {kEditMajor, 1.0}},
                6, 16),
      MakePhase({{kRevertedByOther, 2.5}, {kWarnReceived, 1.5},
                 {kRapidConsecutive, 1.0}},
                1, 6)};
  spree.distractor_prob = 0.10;
  spree.distractor_pool = WikiDistractors();

  // Link spammer: creates redirect pages and injects external links.
  SessionTemplate spammer;
  spammer.name = "link_spammer";
  spammer.phases = {
      MakePhase({{kReadArticle, 0.8}, {kEditObscurePage, 1.2}}, 1, 3),
      MakePhase({{kInsertLinkSpam, 3.0},
                 {kNewPageRedirect, 1.8},
                 {kCreatePage, 1.2},
                 {kSummaryAbsent, 2.0},
                 {kEditObscurePage, 1.2}},
                5, 14),
      MakePhase({{kRevertedByOther, 1.5}, {kWarnReceived, 0.8}}, 0, 3)};
  spammer.distractor_prob = 0.10;
  spammer.distractor_pool = WikiDistractors();

  // Sneaky vandal: low-visibility damage disguised as gnome-like edits.
  SessionTemplate sneaky;
  sneaky.name = "sneaky_vandal";
  sneaky.phases = {
      MakePhase({{kEditObscurePage, 2.0}, {kReadArticle, 1.0}}, 1, 4),
      MakePhase({{kEditMinor, 2.0},
                 {kBlankSection, 1.2},
                 {kSummaryAbsent, 2.2},
                 {kEditObscurePage, 1.5},
                 {kRapidConsecutive, 0.8}},
                5, 14),
      MakePhase({{kRevertedByOther, 0.8}}, 0, 2)};
  sneaky.distractor_prob = 0.12;
  sneaky.distractor_pool = WikiDistractors();

  mix.templates = {spree, spammer, sneaky};
  mix.weights = {0.4, 0.3, 0.3};
  return mix;
}

}  // namespace

SimulatedData MakeWikiDataset(const SplitSpec& split, Rng* rng) {
  return BuildSimulatedData(WikiVocab(), WikiNormalMixture(),
                            WikiMaliciousMixture(), split, rng);
}

}  // namespace clfd
