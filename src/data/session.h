#pragma once

#include <string>
#include <vector>

#include "common/rng.h"

namespace clfd {

// Class labels (Sec. III): 0 = normal, 1 = malicious.
inline constexpr int kNormal = 0;
inline constexpr int kMalicious = 1;

// A user activity session: an ordered sequence of activity ids drawn from
// the dataset vocabulary (e.g. "logon", "usb_insert", "http_leak" for the
// CERT simulation). Ids index into SessionDataset::vocab.
struct Session {
  std::vector<int> activities;
  // Id of the behavioural profile that generated the session. Only used by
  // the simulators' own diagnostics; models never see it.
  int profile = -1;

  int length() const { return static_cast<int>(activities.size()); }
};

// A session together with its ground-truth and (possibly corrupted) noisy
// label. Models train on noisy_label only; true_label is reserved for
// evaluation (test metrics, label-corrector TPR/TNR in Table III).
struct LabeledSession {
  Session session;
  int true_label = kNormal;
  int noisy_label = kNormal;
};

// A set of labeled sessions plus the activity vocabulary they index into.
class SessionDataset {
 public:
  std::vector<LabeledSession> sessions;
  std::vector<std::string> vocab;

  int size() const { return static_cast<int>(sessions.size()); }
  int vocab_size() const { return static_cast<int>(vocab.size()); }

  // Number of sessions whose (noisy or true) label equals `label`.
  int CountTrue(int label) const;
  int CountNoisy(int label) const;

  // Indices of sessions with the given noisy label.
  std::vector<int> IndicesWithNoisyLabel(int label) const;
  std::vector<int> IndicesWithTrueLabel(int label) const;

  // Longest session length (0 when empty).
  int MaxSessionLength() const;

  // Splits [0, size) into shuffled batches of at most batch_size.
  std::vector<std::vector<int>> MakeBatches(int batch_size, Rng* rng) const;
};

}  // namespace clfd

