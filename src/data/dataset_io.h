#pragma once

#include <iosfwd>
#include <string>

#include "data/session.h"

namespace clfd {

// Plain-text dataset serialization, so simulated corpora can be exported
// for inspection or external tooling and real session logs can be imported.
//
// Format (line oriented):
//   clfd-dataset v1
//   vocab <N>
//   <activity name>            x N
//   sessions <M>
//   <true> <noisy> <T> <a_1> ... <a_T>   x M
//
// Activity names must not contain whitespace.

void WriteDataset(std::ostream& os, const SessionDataset& dataset);
// Returns false (and leaves *dataset empty) on malformed input.
bool ReadDataset(std::istream& is, SessionDataset* dataset);

bool SaveDataset(const SessionDataset& dataset, const std::string& path);
bool LoadDataset(const std::string& path, SessionDataset* dataset);

}  // namespace clfd

