#include "data/sim_common.h"
#include "data/simulators.h"

namespace clfd {
namespace {

using sim_internal::BuildSimulatedData;
using sim_internal::MakePhase;

// OpenStack log-key vocabulary: templated log events emitted by nova during
// VM lifecycle operations, as in the DeepLog OpenStack corpus [16].
enum OsActivity : int {
  kApiRequest = 0,
  kAuthOk,
  kAuthFail,
  kVmCreateStart,
  kSchedulerSelect,
  kImageFetch,
  kImageCached,
  kSpawnStart,
  kSpawnSuccess,
  kVmActive,
  kAttachVolume,
  kDetachVolume,
  kVmStop,
  kVmDelete,
  kVmResize,
  kSnapshotCreate,
  kHeartbeat,
  kQuotaCheck,
  kNetAlloc,
  kNetDealloc,
  kSpawnError,
  kRetryOp,
  kTimeout,
  kVmDestroyForced,
  kOrphanResource,
  kApiFlood,
  kMetadataProbe,
  kPortScan,
  kOsVocabSize
};

std::vector<std::string> OpenStackVocab() {
  return {"api_request",    "auth_ok",        "auth_fail",
          "vm_create_start", "scheduler_select", "image_fetch",
          "image_cached",   "spawn_start",    "spawn_success",
          "vm_active",      "attach_volume",  "detach_volume",
          "vm_stop",        "vm_delete",      "vm_resize",
          "snapshot_create", "heartbeat",     "quota_check",
          "net_alloc",      "net_dealloc",    "spawn_error",
          "retry_op",       "timeout",        "vm_destroy_forced",
          "orphan_resource", "api_flood",     "metadata_probe",
          "port_scan"};
}

std::vector<int> OsDistractors() {
  return {kApiRequest, kAuthOk, kHeartbeat, kQuotaCheck, kImageCached,
          kNetAlloc};
}

TemplateMixture OpenStackNormalMixture() {
  TemplateMixture mix;

  SessionTemplate lifecycle;
  lifecycle.name = "vm_lifecycle";
  lifecycle.phases = {
      MakePhase({{kApiRequest, 1.5}, {kAuthOk, 1.0}, {kQuotaCheck, 0.8}}, 2, 4),
      MakePhase({{kVmCreateStart, 1.0}}, 1, 1),
      MakePhase({{kSchedulerSelect, 1.0},
                 {kImageFetch, 0.8},
                 {kImageCached, 1.0},
                 {kNetAlloc, 1.0}},
                2, 5),
      MakePhase({{kSpawnStart, 1.0}}, 1, 1),
      MakePhase({{kSpawnSuccess, 1.5}, {kVmActive, 1.5}, {kHeartbeat, 2.0}},
                3, 10),
      MakePhase({{kVmStop, 0.8}, {kVmDelete, 1.0}, {kNetDealloc, 1.0}}, 1, 4)};
  lifecycle.distractor_prob = 0.05;
  lifecycle.distractor_pool = OsDistractors();

  SessionTemplate storage;
  storage.name = "storage_ops";
  storage.phases = {
      MakePhase({{kApiRequest, 1.5}, {kAuthOk, 1.0}}, 1, 3),
      MakePhase({{kAttachVolume, 2.0},
                 {kSnapshotCreate, 1.5},
                 {kDetachVolume, 1.5},
                 {kHeartbeat, 1.5},
                 {kVmActive, 1.0}},
                5, 14),
      MakePhase({{kHeartbeat, 1.0}, {kApiRequest, 0.8}}, 1, 4)};
  storage.distractor_prob = 0.05;
  storage.distractor_pool = OsDistractors();

  SessionTemplate resize;
  resize.name = "resize_workflow";
  resize.phases = {
      MakePhase({{kApiRequest, 1.0}, {kAuthOk, 1.0}, {kQuotaCheck, 1.2}}, 2, 4),
      MakePhase({{kVmResize, 2.0},
                 {kSchedulerSelect, 1.2},
                 {kVmStop, 0.8},
                 {kSpawnStart, 0.8},
                 {kSpawnSuccess, 0.8},
                 {kVmActive, 1.2}},
                4, 10),
      MakePhase({{kHeartbeat, 1.5}}, 1, 5)};
  resize.distractor_prob = 0.05;
  resize.distractor_pool = OsDistractors();

  SessionTemplate monitoring;
  monitoring.name = "steady_state";
  monitoring.phases = {
      MakePhase({{kApiRequest, 1.0}, {kAuthOk, 0.8}}, 1, 2),
      MakePhase({{kHeartbeat, 3.0},
                 {kVmActive, 1.5},
                 {kApiRequest, 1.0},
                 {kQuotaCheck, 0.6}},
                6, 18)};
  monitoring.distractor_prob = 0.05;
  monitoring.distractor_pool = OsDistractors();

  mix.templates = {lifecycle, storage, resize, monitoring};
  mix.weights = {0.35, 0.2, 0.15, 0.3};
  return mix;
}

TemplateMixture OpenStackMaliciousMixture() {
  TemplateMixture mix;

  // Failure storm: spawn errors with tight retry loops leaving orphans.
  SessionTemplate failure_storm;
  failure_storm.name = "failure_storm";
  failure_storm.phases = {
      MakePhase({{kApiRequest, 1.0}, {kAuthOk, 0.8}, {kVmCreateStart, 1.0}},
                2, 4),
      MakePhase({{kSpawnStart, 1.2},
                 {kSpawnError, 2.5},
                 {kRetryOp, 2.5},
                 {kTimeout, 1.5},
                 {kSchedulerSelect, 0.8}},
                5, 16),
      MakePhase({{kVmDestroyForced, 1.5}, {kOrphanResource, 1.5},
                 {kNetDealloc, 0.8}},
                1, 5)};
  failure_storm.distractor_prob = 0.10;
  failure_storm.distractor_pool = OsDistractors();

  // Credential-stuffing / API abuse: auth failures and request floods.
  SessionTemplate api_abuse;
  api_abuse.name = "api_abuse";
  api_abuse.phases = {
      MakePhase({{kAuthFail, 2.5}, {kApiRequest, 1.5}, {kAuthOk, 0.4}}, 3, 8),
      MakePhase({{kApiFlood, 3.0},
                 {kQuotaCheck, 1.2},
                 {kApiRequest, 1.5},
                 {kAuthFail, 1.0}},
                6, 16)};
  api_abuse.distractor_prob = 0.08;
  api_abuse.distractor_pool = OsDistractors();

  // Reconnaissance from a compromised instance: metadata and port probing.
  SessionTemplate recon;
  recon.name = "instance_recon";
  recon.phases = {
      MakePhase({{kAuthOk, 0.8}, {kApiRequest, 1.0}, {kVmActive, 1.0}}, 2, 5),
      MakePhase({{kMetadataProbe, 2.5},
                 {kPortScan, 2.5},
                 {kNetAlloc, 1.0},
                 {kApiRequest, 0.8},
                 {kHeartbeat, 0.8}},
                6, 16)};
  recon.distractor_prob = 0.10;
  recon.distractor_pool = OsDistractors();

  mix.templates = {failure_storm, api_abuse, recon};
  mix.weights = {0.4, 0.3, 0.3};
  return mix;
}

}  // namespace

SimulatedData MakeOpenStackDataset(const SplitSpec& split, Rng* rng) {
  return BuildSimulatedData(OpenStackVocab(), OpenStackNormalMixture(),
                            OpenStackMaliciousMixture(), split, rng);
}

}  // namespace clfd
