#include "data/simulators.h"

#include <algorithm>
#include <cassert>

namespace clfd {

SplitSpec SplitSpec::Scaled(double factor) const {
  auto scale = [factor](int n, int floor_value) {
    return std::max(floor_value, static_cast<int>(n * factor));
  };
  // The minority class keeps higher floors: the paper's protocol depends on
  // a handful of malicious sessions being present (CERT trains on just 30),
  // and scaling them below ~a dozen removes the minority vote signal
  // entirely rather than shrinking the experiment.
  SplitSpec s;
  s.train_normal = scale(train_normal, 40);
  s.train_malicious = scale(train_malicious, 12);
  s.test_normal = scale(test_normal, 80);
  s.test_malicious = scale(test_malicious, 16);
  return s;
}

SplitSpec PaperSplit(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCert:
      return {10000, 30, 500, 18};
    case DatasetKind::kWiki:
      return {4486, 80, 1000, 500};
    case DatasetKind::kOpenStack:
      return {10000, 60, 1000, 100};
  }
  return {};
}

std::string DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCert:
      return "CERT";
    case DatasetKind::kWiki:
      return "UMD-Wikipedia";
    case DatasetKind::kOpenStack:
      return "Open-Stack";
  }
  return "?";
}

SimulatedData MakeDataset(DatasetKind kind, const SplitSpec& split, Rng* rng) {
  switch (kind) {
    case DatasetKind::kCert:
      return MakeCertDataset(split, rng);
    case DatasetKind::kWiki:
      return MakeWikiDataset(split, rng);
    case DatasetKind::kOpenStack:
      return MakeOpenStackDataset(split, rng);
  }
  assert(false);
  return {};
}

}  // namespace clfd
