#include "data/sim_common.h"

namespace clfd {
namespace sim_internal {

SimulatedData BuildSimulatedData(const std::vector<std::string>& vocab,
                                 const TemplateMixture& normal,
                                 const TemplateMixture& malicious,
                                 const SplitSpec& split, Rng* rng) {
  SimulatedData data;
  data.train.vocab = vocab;
  data.test.vocab = vocab;
  GenerateSessions(normal, split.train_normal, kNormal,
                   &data.train.sessions, rng);
  GenerateSessions(malicious, split.train_malicious, kMalicious,
                   &data.train.sessions, rng);
  GenerateSessions(normal, split.test_normal, kNormal, &data.test.sessions,
                   rng);
  GenerateSessions(malicious, split.test_malicious, kMalicious,
                   &data.test.sessions, rng);
  rng->Shuffle(&data.train.sessions);
  rng->Shuffle(&data.test.sessions);
  return data;
}

Phase MakePhase(std::vector<std::pair<int, double>> bag, int min_len,
                int max_len) {
  Phase phase;
  phase.min_len = min_len;
  phase.max_len = max_len;
  for (const auto& [act, weight] : bag) {
    phase.activities.push_back(act);
    phase.weights.push_back(weight);
  }
  return phase;
}

}  // namespace sim_internal
}  // namespace clfd
