#include "data/dataset_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

namespace clfd {

namespace {

// Hard caps on header-declared counts: a corrupt or hostile header must
// not be able to commission allocations the input bytes cannot back. The
// loaders additionally grow incrementally (reserve is bounded, elements
// are appended as they parse), so even an in-cap declared count only
// costs memory proportional to bytes actually present in the stream.
constexpr int kMaxVocab = 1 << 24;
constexpr int kMaxSessions = 1 << 26;
constexpr int kMaxSessionLen = 1 << 24;

// Cap for speculative reserve() on header-declared counts.
constexpr int kMaxReserve = 1 << 16;

bool IsBinaryLabel(int label) { return label == 0 || label == 1; }

}  // namespace

void WriteDataset(std::ostream& os, const SessionDataset& dataset) {
  os << "clfd-dataset v1\n";
  os << "vocab " << dataset.vocab_size() << "\n";
  for (const std::string& name : dataset.vocab) os << name << "\n";
  os << "sessions " << dataset.size() << "\n";
  for (const LabeledSession& ls : dataset.sessions) {
    os << ls.true_label << ' ' << ls.noisy_label << ' '
       << ls.session.length();
    for (int a : ls.session.activities) os << ' ' << a;
    os << "\n";
  }
}

bool ReadDataset(std::istream& is, SessionDataset* dataset) {
  // Staged parse: everything lands in a local and is committed only on
  // full success, so *dataset is guaranteed empty after any failure —
  // including mid-parse ones.
  *dataset = SessionDataset();
  SessionDataset staged;
  std::string line;
  if (!std::getline(is, line) || line != "clfd-dataset v1") return false;

  std::string keyword;
  int vocab_size = 0;
  if (!(is >> keyword >> vocab_size) || keyword != "vocab" ||
      vocab_size < 0 || vocab_size > kMaxVocab) {
    return false;
  }
  staged.vocab.reserve(std::min(vocab_size, kMaxReserve));
  for (int i = 0; i < vocab_size; ++i) {
    std::string name;
    if (!(is >> name)) return false;
    staged.vocab.push_back(std::move(name));
  }

  int session_count = 0;
  if (!(is >> keyword >> session_count) || keyword != "sessions" ||
      session_count < 0 || session_count > kMaxSessions) {
    return false;
  }
  staged.sessions.reserve(std::min(session_count, kMaxReserve));
  for (int i = 0; i < session_count; ++i) {
    LabeledSession ls;
    int length = 0;
    if (!(is >> ls.true_label >> ls.noisy_label >> length) ||
        !IsBinaryLabel(ls.true_label) || !IsBinaryLabel(ls.noisy_label) ||
        length < 0 || length > kMaxSessionLen) {
      return false;
    }
    ls.session.activities.reserve(
        std::min(length, kMaxReserve));
    for (int t = 0; t < length; ++t) {
      int activity = 0;
      if (!(is >> activity) || activity < 0 || activity >= vocab_size) {
        return false;
      }
      ls.session.activities.push_back(activity);
    }
    staged.sessions.push_back(std::move(ls));
  }
  *dataset = std::move(staged);
  return true;
}

bool SaveDataset(const SessionDataset& dataset, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  WriteDataset(os, dataset);
  return static_cast<bool>(os);
}

bool LoadDataset(const std::string& path, SessionDataset* dataset) {
  std::ifstream is(path);
  if (!is) return false;
  return ReadDataset(is, dataset);
}

}  // namespace clfd
