#include "data/dataset_io.h"

#include <fstream>
#include <sstream>
#include <string>

namespace clfd {

void WriteDataset(std::ostream& os, const SessionDataset& dataset) {
  os << "clfd-dataset v1\n";
  os << "vocab " << dataset.vocab_size() << "\n";
  for (const std::string& name : dataset.vocab) os << name << "\n";
  os << "sessions " << dataset.size() << "\n";
  for (const LabeledSession& ls : dataset.sessions) {
    os << ls.true_label << ' ' << ls.noisy_label << ' '
       << ls.session.length();
    for (int a : ls.session.activities) os << ' ' << a;
    os << "\n";
  }
}

bool ReadDataset(std::istream& is, SessionDataset* dataset) {
  *dataset = SessionDataset();
  std::string line;
  if (!std::getline(is, line) || line != "clfd-dataset v1") return false;

  std::string keyword;
  int vocab_size = 0;
  if (!(is >> keyword >> vocab_size) || keyword != "vocab" || vocab_size < 0) {
    return false;
  }
  dataset->vocab.resize(vocab_size);
  for (int i = 0; i < vocab_size; ++i) {
    if (!(is >> dataset->vocab[i])) return false;
  }

  int session_count = 0;
  if (!(is >> keyword >> session_count) || keyword != "sessions" ||
      session_count < 0) {
    return false;
  }
  dataset->sessions.resize(session_count);
  for (int i = 0; i < session_count; ++i) {
    LabeledSession& ls = dataset->sessions[i];
    int length = 0;
    if (!(is >> ls.true_label >> ls.noisy_label >> length) || length < 0) {
      *dataset = SessionDataset();
      return false;
    }
    ls.session.activities.resize(length);
    for (int t = 0; t < length; ++t) {
      if (!(is >> ls.session.activities[t]) ||
          ls.session.activities[t] < 0 ||
          ls.session.activities[t] >= vocab_size) {
        *dataset = SessionDataset();
        return false;
      }
    }
  }
  return true;
}

bool SaveDataset(const SessionDataset& dataset, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  WriteDataset(os, dataset);
  return static_cast<bool>(os);
}

bool LoadDataset(const std::string& path, SessionDataset* dataset) {
  std::ifstream is(path);
  if (!is) return false;
  return ReadDataset(is, dataset);
}

}  // namespace clfd
