#pragma once

#include <string>

#include "common/rng.h"
#include "data/session.h"

namespace clfd {

// Synthetic stand-ins for the paper's three benchmark datasets.
//
// The real corpora (CERT r4.2 insider-threat logs, UMD-Wikipedia vandal
// sessions, OpenStack logs) are not redistributable, so each simulator
// generates activity sessions from behavioural grammars that preserve the
// properties the paper's experiments exercise: extreme class imbalance,
// high session diversity (multiple normal roles and multiple attack
// scenarios), vocabulary overlap between classes, and sequential structure
// that a sequence encoder can separate but a bag-of-tokens rule cannot
// fully. Split sizes default to the paper's (Sec. IV-A1).

struct SplitSpec {
  int train_normal = 0;
  int train_malicious = 0;
  int test_normal = 0;
  int test_malicious = 0;

  // Multiplies every count by `factor`, keeping small floors so scaled-down
  // experiments still contain both classes.
  SplitSpec Scaled(double factor) const;
};

struct SimulatedData {
  SessionDataset train;
  SessionDataset test;
};

enum class DatasetKind { kCert, kWiki, kOpenStack };

// Paper split sizes: CERT 10000/30 train + 500/18 test; UMD-Wikipedia
// 4486/80 + 1000/500; OpenStack 10000/60 + 1000/100.
SplitSpec PaperSplit(DatasetKind kind);

std::string DatasetName(DatasetKind kind);

// Simulators. Train and test sessions are drawn from the same behavioural
// mixtures (the paper splits chronologically; the grammars are stationary).
SimulatedData MakeCertDataset(const SplitSpec& split, Rng* rng);
SimulatedData MakeWikiDataset(const SplitSpec& split, Rng* rng);
SimulatedData MakeOpenStackDataset(const SplitSpec& split, Rng* rng);

SimulatedData MakeDataset(DatasetKind kind, const SplitSpec& split, Rng* rng);

}  // namespace clfd

