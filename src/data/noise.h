#pragma once

#include "common/rng.h"
#include "data/session.h"

namespace clfd {

// Label-noise injection following the paper's protocol (Sec. IV-A2).
//
// Uniform noise: every session's ground-truth label is flipped independently
// with probability eta [13]. Class-dependent noise: malicious labels flip
// with probability eta10 = P(noisy=0 | true=1) and normal labels with
// eta01 = P(noisy=1 | true=0) [52]. Both write `noisy_label`; `true_label`
// is never modified.

void ApplyUniformNoise(SessionDataset* dataset, double eta, Rng* rng);

void ApplyClassDependentNoise(SessionDataset* dataset, double eta10,
                              double eta01, Rng* rng);

// Fraction of sessions whose noisy label disagrees with the ground truth.
double ObservedNoiseRate(const SessionDataset& dataset);

// Specification of a noise setting, used by the experiment harness.
struct NoiseSpec {
  enum class Kind { kNone, kUniform, kClassDependent };
  Kind kind = Kind::kNone;
  double eta = 0.0;     // uniform rate
  double eta10 = 0.0;   // P(flip | malicious)
  double eta01 = 0.0;   // P(flip | normal)

  static NoiseSpec None() { return {}; }
  static NoiseSpec Uniform(double eta) {
    NoiseSpec s;
    s.kind = Kind::kUniform;
    s.eta = eta;
    return s;
  }
  static NoiseSpec ClassDependent(double eta10, double eta01) {
    NoiseSpec s;
    s.kind = Kind::kClassDependent;
    s.eta10 = eta10;
    s.eta01 = eta01;
    return s;
  }

  void Apply(SessionDataset* dataset, Rng* rng) const;
  std::string ToString() const;
};

}  // namespace clfd

