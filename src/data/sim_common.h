#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/generator.h"
#include "data/simulators.h"

namespace clfd {
namespace sim_internal {

// Shared assembly step for the three simulators: draws the requested number
// of normal/malicious train and test sessions from the class mixtures and
// attaches the vocabulary.
SimulatedData BuildSimulatedData(const std::vector<std::string>& vocab,
                                 const TemplateMixture& normal,
                                 const TemplateMixture& malicious,
                                 const SplitSpec& split, Rng* rng);

// Helper to build a phase from (activity, weight) pairs.
Phase MakePhase(std::vector<std::pair<int, double>> bag, int min_len,
                int max_len);

}  // namespace sim_internal
}  // namespace clfd

