#include "data/session.h"

#include <algorithm>
#include <numeric>

namespace clfd {

int SessionDataset::CountTrue(int label) const {
  int n = 0;
  for (const auto& s : sessions) n += (s.true_label == label);
  return n;
}

int SessionDataset::CountNoisy(int label) const {
  int n = 0;
  for (const auto& s : sessions) n += (s.noisy_label == label);
  return n;
}

std::vector<int> SessionDataset::IndicesWithNoisyLabel(int label) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (sessions[i].noisy_label == label) out.push_back(i);
  }
  return out;
}

std::vector<int> SessionDataset::IndicesWithTrueLabel(int label) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (sessions[i].true_label == label) out.push_back(i);
  }
  return out;
}

int SessionDataset::MaxSessionLength() const {
  int mx = 0;
  for (const auto& s : sessions) mx = std::max(mx, s.session.length());
  return mx;
}

std::vector<std::vector<int>> SessionDataset::MakeBatches(int batch_size,
                                                          Rng* rng) const {
  std::vector<int> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  std::vector<std::vector<int>> batches;
  for (int start = 0; start < size(); start += batch_size) {
    int end = std::min(start + batch_size, size());
    batches.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batches;
}

}  // namespace clfd
