#include "data/sim_common.h"
#include "data/simulators.h"

namespace clfd {
namespace {

using sim_internal::BuildSimulatedData;
using sim_internal::MakePhase;

// CERT r4.2 activity vocabulary (insider-threat logs): logon/device/file/
// email/http events as recorded by the CERT synthetic insider dataset [14].
enum CertActivity : int {
  kLogonDay = 0,
  kLogonNight,
  kLogoff,
  kUsbInsert,
  kUsbRemove,
  kFileCopy,
  kFileWrite,
  kFileRead,
  kFileDelete,
  kEmailInternal,
  kEmailExternal,
  kEmailRead,
  kEmailAttach,
  kHttpWork,
  kHttpSocial,
  kHttpNews,
  kHttpJob,
  kHttpLeak,
  kHttpCloud,
  kBuildRun,
  kCodeCommit,
  kDbQuery,
  kAdminTask,
  kVpnConnect,
  kVpnDisconnect,
  kPrintDoc,
  kMeetingCal,
  kImMessage,
  kCertVocabSize
};

std::vector<std::string> CertVocab() {
  return {"logon_day",    "logon_night",  "logoff",        "usb_insert",
          "usb_remove",   "file_copy",    "file_write",    "file_read",
          "file_delete",  "email_internal", "email_external", "email_read",
          "email_attach", "http_work",    "http_social",   "http_news",
          "http_job",     "http_leak",    "http_cloud",    "build_run",
          "code_commit",  "db_query",     "admin_task",    "vpn_connect",
          "vpn_disconnect", "print_doc",  "meeting_cal",   "im_message"};
}

// Activities any employee may emit; used as distractors in both classes so
// that no single token separates the classes.
std::vector<int> CertDistractors() {
  return {kEmailRead, kHttpWork, kHttpNews, kHttpSocial, kImMessage,
          kFileRead, kFileWrite, kMeetingCal};
}

TemplateMixture CertNormalMixture() {
  TemplateMixture mix;

  SessionTemplate office;
  office.name = "office_worker";
  office.phases = {
      MakePhase({{kLogonDay, 0.95}, {kLogonNight, 0.05}}, 1, 1),
      MakePhase({{kEmailRead, 3.0},
                 {kEmailInternal, 2.0},
                 {kHttpWork, 3.0},
                 {kFileWrite, 2.0},
                 {kFileRead, 1.5},
                 {kPrintDoc, 0.7},
                 {kMeetingCal, 1.0},
                 {kImMessage, 1.5},
                 {kHttpNews, 0.8},
                 {kHttpSocial, 0.6},
                 {kEmailExternal, 0.4}},
                8, 24),
      MakePhase({{kLogoff, 1.0}}, 1, 1)};
  office.distractor_prob = 0.05;
  office.distractor_pool = CertDistractors();

  SessionTemplate developer;
  developer.name = "developer";
  developer.phases = {
      MakePhase({{kLogonDay, 0.9}, {kLogonNight, 0.1}}, 1, 1),
      MakePhase({{kCodeCommit, 2.5},
                 {kBuildRun, 3.0},
                 {kHttpWork, 2.0},
                 {kDbQuery, 1.5},
                 {kFileRead, 1.5},
                 {kFileWrite, 2.0},
                 {kImMessage, 1.0},
                 {kEmailRead, 1.0}},
                10, 26),
      MakePhase({{kLogoff, 1.0}}, 1, 1)};
  developer.distractor_prob = 0.05;
  developer.distractor_pool = CertDistractors();

  SessionTemplate sysadmin;
  sysadmin.name = "sysadmin";
  sysadmin.phases = {
      MakePhase({{kLogonDay, 0.7}, {kLogonNight, 0.3}}, 1, 1),
      MakePhase({{kAdminTask, 3.0},
                 {kDbQuery, 2.0},
                 {kVpnConnect, 0.8},
                 {kVpnDisconnect, 0.8},
                 {kFileRead, 1.5},
                 {kFileCopy, 0.6},   // admins copy files legitimately
                 {kUsbInsert, 0.3},  // ... and occasionally use USB drives
                 {kUsbRemove, 0.3},
                 {kHttpWork, 1.0},
                 {kEmailRead, 0.8}},
                8, 22),
      MakePhase({{kLogoff, 1.0}}, 1, 1)};
  sysadmin.distractor_prob = 0.05;
  sysadmin.distractor_pool = CertDistractors();

  SessionTemplate manager;
  manager.name = "manager";
  manager.phases = {
      MakePhase({{kLogonDay, 1.0}}, 1, 1),
      MakePhase({{kEmailRead, 3.0},
                 {kEmailInternal, 2.5},
                 {kEmailExternal, 1.0},
                 {kMeetingCal, 2.5},
                 {kPrintDoc, 1.2},
                 {kHttpNews, 1.0},
                 {kHttpWork, 1.5},
                 {kEmailAttach, 0.8}},
                8, 20),
      MakePhase({{kLogoff, 1.0}}, 1, 1)};
  manager.distractor_prob = 0.05;
  manager.distractor_pool = CertDistractors();

  mix.templates = {office, developer, sysadmin, manager};
  mix.weights = {0.4, 0.25, 0.15, 0.2};
  return mix;
}

TemplateMixture CertMaliciousMixture() {
  TemplateMixture mix;

  // Scenario 1: after-hours data exfiltration over removable media and a
  // leak site (the classic CERT r4.2 scenario).
  SessionTemplate exfil;
  exfil.name = "exfiltration";
  exfil.phases = {
      MakePhase({{kLogonNight, 0.85}, {kLogonDay, 0.15}}, 1, 1),
      MakePhase({{kFileRead, 2.0}, {kDbQuery, 1.5}, {kHttpWork, 0.8}}, 2, 6),
      MakePhase({{kFileCopy, 3.5},
                 {kUsbInsert, 1.5},
                 {kUsbRemove, 1.2},
                 {kHttpCloud, 1.5},
                 {kFileRead, 0.8}},
                8, 18),
      MakePhase({{kHttpLeak, 2.5}, {kEmailExternal, 1.0}, {kEmailAttach, 1.2}},
                2, 6),
      MakePhase({{kLogoff, 1.0}}, 1, 1)};
  exfil.distractor_prob = 0.06;
  exfil.distractor_pool = CertDistractors();

  // Scenario 2: disgruntled employee job-hunting and leaking documents
  // during otherwise normal working hours.
  SessionTemplate disgruntled;
  disgruntled.name = "disgruntled_leaker";
  disgruntled.phases = {
      MakePhase({{kLogonDay, 1.0}}, 1, 1),
      MakePhase({{kEmailRead, 1.5},
                 {kHttpWork, 1.5},
                 {kFileRead, 1.0},
                 {kImMessage, 0.8}},
                4, 10),
      MakePhase({{kHttpJob, 3.5},
                 {kEmailExternal, 1.5},
                 {kEmailAttach, 1.8},
                 {kHttpCloud, 1.2},
                 {kFileCopy, 1.2}},
                7, 16),
      MakePhase({{kLogoff, 1.0}}, 1, 1)};
  disgruntled.distractor_prob = 0.06;
  disgruntled.distractor_pool = CertDistractors();

  // Scenario 3: sabotage by a privileged user (mass deletion / admin abuse).
  SessionTemplate saboteur;
  saboteur.name = "saboteur";
  saboteur.phases = {
      MakePhase({{kLogonNight, 0.6}, {kLogonDay, 0.4}}, 1, 1),
      MakePhase({{kAdminTask, 1.5}, {kDbQuery, 1.2}, {kVpnConnect, 0.6}}, 2, 6),
      MakePhase({{kFileDelete, 3.5},
                 {kAdminTask, 1.0},
                 {kFileWrite, 0.6},
                 {kDbQuery, 0.8}},
                7, 16),
      MakePhase({{kLogoff, 1.0}}, 1, 1)};
  saboteur.distractor_prob = 0.06;
  saboteur.distractor_pool = CertDistractors();

  mix.templates = {exfil, disgruntled, saboteur};
  mix.weights = {0.45, 0.3, 0.25};
  return mix;
}

}  // namespace

SimulatedData MakeCertDataset(const SplitSpec& split, Rng* rng) {
  return BuildSimulatedData(CertVocab(), CertNormalMixture(),
                            CertMaliciousMixture(), split, rng);
}

}  // namespace clfd
