#include "metrics/metrics.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace clfd {

ConfusionCounts Confusion(const std::vector<int>& predictions,
                          const std::vector<int>& truths) {
  assert(predictions.size() == truths.size());
  ConfusionCounts c;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (truths[i] == 1) {
      predictions[i] == 1 ? ++c.tp : ++c.fn;
    } else {
      predictions[i] == 1 ? ++c.fp : ++c.tn;
    }
  }
  return c;
}

double F1Score(const ConfusionCounts& c) {
  double denom = 2.0 * c.tp + c.fp + c.fn;
  if (denom == 0.0) return 0.0;
  return 100.0 * 2.0 * c.tp / denom;
}

double F1Score(const std::vector<int>& predictions,
               const std::vector<int>& truths) {
  return F1Score(Confusion(predictions, truths));
}

double FalsePositiveRate(const ConfusionCounts& c) {
  if (c.fp + c.tn == 0) return 0.0;
  return 100.0 * c.fp / static_cast<double>(c.fp + c.tn);
}

double FalsePositiveRate(const std::vector<int>& predictions,
                         const std::vector<int>& truths) {
  return FalsePositiveRate(Confusion(predictions, truths));
}

double TruePositiveRate(const ConfusionCounts& c) {
  if (c.tp + c.fn == 0) return 0.0;
  return 100.0 * c.tp / static_cast<double>(c.tp + c.fn);
}

double TrueNegativeRate(const ConfusionCounts& c) {
  if (c.tn + c.fp == 0) return 0.0;
  return 100.0 * c.tn / static_cast<double>(c.tn + c.fp);
}

double AucRoc(const std::vector<double>& scores,
              const std::vector<int>& truths) {
  assert(scores.size() == truths.size());
  size_t n = scores.size();
  int positives = 0;
  for (int t : truths) positives += (t == 1);
  int negatives = static_cast<int>(n) - positives;
  if (positives == 0 || negatives == 0) return 50.0;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  // Midranks for ties.
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    double midrank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }

  double rank_sum_pos = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (truths[k] == 1) rank_sum_pos += ranks[k];
  }
  double u = rank_sum_pos -
             static_cast<double>(positives) * (positives + 1) / 2.0;
  return 100.0 * u / (static_cast<double>(positives) * negatives);
}

}  // namespace clfd
