#pragma once

#include <vector>

namespace clfd {

// Evaluation metrics used in the paper (Sec. IV-A2): F1, False Positive
// Rate, and AUC-ROC for detector quality, plus TPR/TNR for the label
// corrector (Table III). All functions treat label 1 (malicious) as the
// positive class and return values on the paper's 0-100 percentage scale.

struct ConfusionCounts {
  int tp = 0, fp = 0, tn = 0, fn = 0;
  int total() const { return tp + fp + tn + fn; }
};

// Confusion counts from binary predictions vs. ground truth.
ConfusionCounts Confusion(const std::vector<int>& predictions,
                          const std::vector<int>& truths);

// F1 of the positive class: 2 * precision * recall / (precision + recall).
double F1Score(const ConfusionCounts& counts);
double F1Score(const std::vector<int>& predictions,
               const std::vector<int>& truths);

// FPR = FP / (FP + TN).
double FalsePositiveRate(const ConfusionCounts& counts);
double FalsePositiveRate(const std::vector<int>& predictions,
                         const std::vector<int>& truths);

// TPR = TP / (TP + FN); TNR = TN / (TN + FP).
double TruePositiveRate(const ConfusionCounts& counts);
double TrueNegativeRate(const ConfusionCounts& counts);

// AUC-ROC via the Mann-Whitney U statistic with midrank tie handling.
// `scores` are anomaly scores (higher = more malicious). Returns 50 when a
// class is missing (degenerate case).
double AucRoc(const std::vector<double>& scores,
              const std::vector<int>& truths);

}  // namespace clfd

