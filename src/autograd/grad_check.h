#pragma once

#include <functional>
#include <vector>

#include "autograd/var.h"

namespace clfd {
namespace ag {

// Result of a finite-difference gradient verification.
struct GradCheckResult {
  float max_abs_error = 0.0f;   // max |analytic - numeric| over all entries
  float max_rel_error = 0.0f;   // relative version with an absolute floor
  // Max |reference - variant| over the analytic gradients when multiple
  // kernel configurations were exercised: serial vs parallel for
  // CheckGradientsBothKernelPaths, and every backend x {serial, parallel}
  // combination against the scalar-serial reference for
  // CheckGradientsAllBackends. All configurations are bitwise-
  // interchangeable by construction, so any nonzero value is a bug.
  float serial_parallel_grad_diff = 0.0f;
  bool ok(float tol = 2e-2f) const {
    return (max_abs_error < tol || max_rel_error < tol) &&
           serial_parallel_grad_diff == 0.0f;
  }
};

// Verifies the analytic gradients of `build_loss` against central finite
// differences. `build_loss` must construct a fresh graph from the given
// params on every call and return a [1 x 1] scalar. Perturbation happens on
// the param values in place (restored afterwards).
//
// Used by the test suite to validate every autograd op and every network
// layer (the substrate substituting for PyTorch must compute the same
// gradients PyTorch would).
GradCheckResult CheckGradients(
    const std::function<Var(const std::vector<Var>&)>& build_loss,
    const std::vector<Var>& params, float epsilon = 1e-3f);

// Runs the finite-difference check twice — once with the matmul parallel
// threshold forced up (every kernel serial) and once with it forced to zero
// (every eligible kernel row-parallel) — and additionally compares the two
// analytic gradient sets bitwise (serial_parallel_grad_diff). This is how
// properties_test.cc extends gradient coverage to the parallel kernel path.
GradCheckResult CheckGradientsBothKernelPaths(
    const std::function<Var(const std::vector<Var>&)>& build_loss,
    const std::vector<Var>& params, float epsilon = 1e-3f);

// The full cross-product extension of the check above: runs the finite-
// difference verification once on the scalar backend with every kernel
// serial (the oracle configuration), then recomputes the analytic
// gradients under every kernel backend (tensor/kernel_backend.h) x
// {serial, row-parallel} combination and folds the bitwise max deviation
// from the oracle gradients into serial_parallel_grad_diff. The re-runs
// skip the numeric differencing — backend invariance is a bitwise claim
// about the analytic pass, so one oracle-vs-numeric comparison plus six
// backward passes buys the same coverage at a fraction of the cost. This
// is how the grad-check suites extend their coverage to the blocked/simd
// kernel bodies; a new backend added to AllKernelBackends() is swept
// automatically.
GradCheckResult CheckGradientsAllBackends(
    const std::function<Var(const std::vector<Var>&)>& build_loss,
    const std::vector<Var>& params, float epsilon = 1e-3f);

}  // namespace ag
}  // namespace clfd

