#pragma once

#include <vector>

#include "autograd/var.h"

namespace clfd {
namespace ag {

// Interception points that let an execution-plan engine (src/plan) observe
// or replace the dynamic tape (DESIGN.md §15).
//
// Every op builder in var.cc calls OnOp() before doing any work; every leaf
// builder calls OnLeaf(). A hook that returns true has satisfied the call
// from a previously captured plan (replay): the builder returns the plan's
// node and constructs nothing. A hook that returns false lets the dynamic
// builder run; MakeOp/Constant/Param then report the freshly created node
// through OnNodeCreated() so a capturing hook can pair it with the OpDesc
// it saw in OnOp(). Backward() consults OnBackward() the same way, and the
// dynamic engine reports its execution order through OnBackwardOrder().
//
// Hooks are installed per *thread* (SetTapeHooks), because the sharded
// trainer runs one independent capture/replay stream per shard worker. The
// cost when no hook is installed is a single thread-local load and branch
// per op.

// Per-call payload for a planned forward body: the op's captured scalar
// arguments plus the pointers to this step's per-call auxiliary matrices
// (RowScaleConst's scale column, LstmInputProjection's input block). The
// aux pointers are only meaningful during replay; `aux_move` may be moved
// from by the forward body.
struct OpCall {
  float f0 = 0.0f;
  int i0 = 0;
  int i1 = 0;
  const Matrix* aux_copy = nullptr;
  Matrix* aux_move = nullptr;
};

// Recomputes `out`'s value (and `out->aux` where the op uses it) from the
// parent nodes, running exactly the kernel calls the dynamic builder runs.
// One function per op kind, defined in var.cc next to the builder so the
// two bodies cannot drift apart.
using PlanForwardFn = void (*)(Node* out, Node* const* parents,
                               int num_parents, const OpCall& call);

// Everything a plan needs to record (capture) or validate (replay) one op
// call. `op` is the same static provenance string stored in Node::op, so
// kind comparison is cheap. `inputs` is an array of *pointers* to the
// builder's Var arguments — pointers rather than copies so a replayed op
// pays zero shared_ptr refcount traffic — and is only valid for the
// duration of the OnOp() call.
struct OpDesc {
  const char* op = nullptr;
  PlanForwardFn forward = nullptr;
  const Var* const* inputs = nullptr;
  int num_inputs = 0;
  OpCall call;
};

class TapeHooks {
 public:
  virtual ~TapeHooks() = default;

  // Op builder entry. Return true to satisfy the call from a plan (replay;
  // *out receives the plan's node), false to let the dynamic builder run.
  virtual bool OnOp(const OpDesc& desc, Var* out) = 0;

  // Leaf builder entry (ag::Constant / ag::Param). Return true to bind
  // *value into the plan's leaf slot (the matrix may be moved from) and
  // hand back the slot through *out.
  virtual bool OnLeaf(const char* op, Matrix* value, bool requires_grad,
                      Var* out) = 0;

  // Reports a node the dynamic builder just created. For interior nodes
  // this pairs with the immediately preceding OnOp() that returned false;
  // for leaves, with the preceding OnLeaf().
  virtual void OnNodeCreated(const NodePtr& node) = 0;

  // Backward entry. `seed` is null for plain Backward(). Return true to
  // run a planned backward instead of the dynamic engine.
  virtual bool OnBackward(const Var& root, const Matrix* seed) = 0;

  // Reports the dynamic engine's post-order (leaf-to-root) execution
  // sequence so a capture can replay the exact same accumulation order.
  virtual void OnBackwardOrder(const Var& root, const Matrix* seed,
                               const std::vector<Node*>& post_order) = 0;
};

// Installs `hooks` for the current thread (nullptr uninstalls) and returns
// the previously installed value so scopes can nest.
TapeHooks* SetTapeHooks(TapeHooks* hooks);
TapeHooks* CurrentTapeHooks();

}  // namespace ag
}  // namespace clfd
