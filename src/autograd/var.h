#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace clfd {
namespace ag {

// One node in the dynamically built computation graph.
//
// A node owns its forward value and (lazily allocated) gradient buffer. The
// backward function of a node propagates `grad` into the gradients of its
// parents; nodes and their captured intermediates are freed automatically
// when the last Var handle referencing the graph goes out of scope.
class Node {
 public:
  Matrix value;
  Matrix grad;  // same shape as value once EnsureGrad() has run
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this node's grad into parents' grads. Null for leaves.
  std::function<void(Node*)> backward_fn;
  // Provenance + tape-misuse accounting for the invariant checker
  // (common/check.h): which op built this node, and how many times its
  // backward_fn has executed. A second execution means the same tape
  // section would double-propagate gradients — Backward called twice on one
  // root, or new ops built on a Var whose tape was already consumed — and
  // fails loudly when checks are enabled.
  const char* op = "leaf";
  int backward_runs = 0;
  // Last execution-plan capture that recorded this node (src/plan). Tags are
  // minted from a process-global monotonic counter, so a stale tag from a
  // dead plan can never collide with a live capture's. Written only while a
  // capture's hooks are installed on the owning thread; concurrent capture
  // streams never share input nodes (the sharded trainer gives each replica
  // its own parameters), so the field needs no synchronization.
  uint64_t plan_tag = 0;
  // Per-step auxiliary data some backwards need beyond parent/output values
  // (RowScaleConst's scale column, LstmGates' cached activations, the LSTM
  // input projection's input block, NormalizeRows' row norms). Stored on the
  // node rather than captured by value in the backward closure so a replayed
  // step (src/plan) can refresh it without rebuilding the closure.
  Matrix aux;

  void EnsureGrad() {
    if (!grad.SameShape(value)) grad = Matrix(value.rows(), value.cols());
  }
};

using NodePtr = std::shared_ptr<Node>;

// Lightweight value-semantic handle to a graph node. All autograd ops take
// and return Var by value; copying a Var aliases the underlying node.
class Var {
 public:
  Var() = default;
  explicit Var(NodePtr node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const { return node_->value; }
  // Mutators operate on the shared node, so they are usable through const
  // handles (a Var is a reference, not a value).
  Matrix& mutable_value() const { return node_->value; }
  const Matrix& grad() const { return node_->grad; }
  Matrix& mutable_grad() const { return node_->grad; }
  bool requires_grad() const { return node_ && node_->requires_grad; }

  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }

  // By const reference: node() sits on the replay hot path (src/plan
  // validates every op input against the captured graph), where a by-value
  // return would cost two atomic refcount operations per parent per op.
  const NodePtr& node() const { return node_; }

 private:
  NodePtr node_;
};

// Leaf with no gradient (inputs, labels, masks).
Var Constant(Matrix value);
// Leaf that accumulates gradient (model parameters).
Var Param(Matrix value);

// Runs reverse-mode accumulation from `root` (typically a [1 x 1] scalar
// loss). Seeds d(root)/d(root) = 1 and traverses the graph in reverse
// topological order. Parameter gradients accumulate across calls until the
// optimizer clears them.
void Backward(const Var& root);

// Backward with an explicit upstream gradient: seeds d(loss)/d(root) +=
// seed (same shape as root's value) instead of 1. This is how a tape that
// was cut at `root` is resumed — the sharded training step backpropagates
// the loss through a small serial head, then feeds each shard's slice of
// the head-input gradient into that shard's own tape.
void BackwardWithGrad(const Var& root, const Matrix& seed);

// ---- Differentiable ops. Shapes follow the tensor/matrix.h kernels. ----

Var MatMul(const Var& a, const Var& b);
// a * b^T; used for similarity matrices (z z^T).
Var MatMulTransposeB(const Var& a, const Var& b);

Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);  // elementwise
Var AddScalar(const Var& a, float s);
Var Scale(const Var& a, float s);
// Adds a [1 x C] bias row to every row of a.
Var AddRowBroadcast(const Var& a, const Var& bias);
// Scales row r of a by the constant col[r] (no gradient through col).
// Used for sequence masking and confidence weighting.
Var RowScaleConst(const Var& a, const Matrix& col);

Var Exp(const Var& a);
Var Log(const Var& a);        // input clamped at 1e-12 in forward & backward
Var Pow(const Var& a, float p);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Relu(const Var& a);
Var LeakyRelu(const Var& a, float slope);

// Row-wise softmax (stable); used by classifier heads & attention.
Var SoftmaxRows(const Var& a);

// Reductions to [1 x 1] / per-row.
Var SumAll(const Var& a);
Var MeanAll(const Var& a);
Var SumRows(const Var& a);  // [R x C] -> [R x 1]

Var ConcatRows(const std::vector<Var>& blocks);
Var SliceRows(const Var& a, int begin, int end);

// Column-wise concatenation/slicing; used to pack the LSTM gate weights
// per forward pass while the per-gate matrices stay the canonical
// parameters (optimizer state, clipping order and serialization format are
// unchanged by the fused path).
Var ConcatCols(const std::vector<Var>& blocks);
Var SliceCols(const Var& a, int begin, int end);

// ---- Fused LSTM ops (the nn/lstm.cc fused path; DESIGN.md §9). ----
// Each is bit-equivalent to the unfused subgraph it replaces: forwards use
// the same column-independent matmul kernels, backwards replay the legacy
// tape's accumulation order (gate blocks in kLstmGateBackwardOrder, time
// blocks descending).

// x * w for a packed 4-gate weight w [K x 4H]. Forward is one MatMul; the
// backward into x runs one H-wide gate block at a time in the legacy
// order, and the backward into w is a standard MatMulTransposeA (its
// column blocks are independent, so packing cannot change them).
Var LstmPackedMatMul(const Var& x, const Var& w);

// xcat * w, where xcat is the [T*B x K] row-concatenation of a layer's T
// constant input steps. One call amortizes the whole layer's input
// projection into a matmul big enough for the parallel kernels; only
// usable when the inputs carry no gradient (they are raw data, not a
// parent), which holds for layer 0's embedded steps. The backward into w
// accumulates per B-row time block in descending order, matching the
// legacy per-step accumulation.
Var LstmInputProjection(Matrix xcat, const Var& w, int block_rows);

// Fused LSTM cell update replacing ~12 elementwise tape nodes: pre
// [B x 4H] holds the packed gate preactivations, hc_prev [B x 2H] the
// previous [h | c]. Returns [B x 2H] = [h_t | c_t]; take h_t with
// SliceCols. h_{t-1} feeds the step only through the recurrent matmul, so
// only the c half of hc_prev receives gradient from this op.
Var LstmGates(const Var& pre, const Var& hc_prev);

// L2-normalizes every row; the backbone of cosine-similarity losses.
Var NormalizeRows(const Var& a);

}  // namespace ag
}  // namespace clfd

