#include "autograd/grad_check.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "parallel/thread_pool.h"
#include "tensor/kernel_backend.h"

namespace clfd {
namespace ag {

namespace {

// One analytic pass (no numeric differencing): zero the grads, rebuild the
// graph, run backward. The caller reads the grads off `params`.
void AnalyticGradients(
    const std::function<Var(const std::vector<Var>&)>& build_loss,
    const std::vector<Var>& params) {
  for (const Var& p : params) {
    p.node()->grad = Matrix(p.rows(), p.cols());
  }
  Var loss = build_loss(params);
  Backward(loss);
}

}  // namespace

GradCheckResult CheckGradients(
    const std::function<Var(const std::vector<Var>&)>& build_loss,
    const std::vector<Var>& params, float epsilon) {
  // Analytic pass.
  for (const Var& p : params) {
    p.node()->grad = Matrix(p.rows(), p.cols());
  }
  Var loss = build_loss(params);
  Backward(loss);

  GradCheckResult result;
  for (const Var& p : params) {
    Matrix& value = p.node()->value;
    for (int i = 0; i < value.size(); ++i) {
      float saved = value[i];
      value[i] = saved + epsilon;
      float up = build_loss(params).value()[0];
      value[i] = saved - epsilon;
      float down = build_loss(params).value()[0];
      value[i] = saved;
      float numeric = (up - down) / (2.0f * epsilon);
      float analytic = p.grad()[i];
      float abs_err = std::abs(numeric - analytic);
      float denom = std::max({std::abs(numeric), std::abs(analytic), 1.0f});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    }
  }
  return result;
}

GradCheckResult CheckGradientsBothKernelPaths(
    const std::function<Var(const std::vector<Var>&)>& build_loss,
    const std::vector<Var>& params, float epsilon) {
  GradCheckResult serial, parallel_result;
  std::vector<Matrix> serial_grads;
  {
    ScopedMatmulParallelThreshold force_serial(
        std::numeric_limits<int64_t>::max());
    serial = CheckGradients(build_loss, params, epsilon);
    for (const Var& p : params) serial_grads.push_back(p.grad());
  }
  {
    // Widen the pool so the zero threshold genuinely dispatches (a 1-wide
    // pool would short-circuit back to the serial path).
    int saved_threads = parallel::GlobalThreadCount();
    parallel::SetGlobalThreads(std::max(saved_threads, 4));
    ScopedMatmulParallelThreshold force_parallel(0);
    parallel_result = CheckGradients(build_loss, params, epsilon);
    parallel::SetGlobalThreads(saved_threads);
  }
  GradCheckResult result;
  result.max_abs_error =
      std::max(serial.max_abs_error, parallel_result.max_abs_error);
  result.max_rel_error =
      std::max(serial.max_rel_error, parallel_result.max_rel_error);
  for (size_t i = 0; i < params.size(); ++i) {
    result.serial_parallel_grad_diff =
        std::max(result.serial_parallel_grad_diff,
                 MaxAbsDiff(serial_grads[i], params[i].grad()));
  }
  return result;
}

GradCheckResult CheckGradientsAllBackends(
    const std::function<Var(const std::vector<Var>&)>& build_loss,
    const std::vector<Var>& params, float epsilon) {
  // Oracle configuration: scalar backend, every kernel serial. This is the
  // one run that also does the numeric finite-difference comparison.
  GradCheckResult result;
  std::vector<Matrix> reference;
  {
    ScopedKernelBackend scalar(KernelBackend::kScalar);
    ScopedMatmulParallelThreshold force_serial(
        std::numeric_limits<int64_t>::max());
    result = CheckGradients(build_loss, params, epsilon);
    for (const Var& p : params) reference.push_back(p.grad());
  }
  for (KernelBackend backend : AllKernelBackends()) {
    ScopedKernelBackend use_backend(backend);
    for (bool parallel_path : {false, true}) {
      if (backend == KernelBackend::kScalar && !parallel_path) {
        continue;  // the oracle run above
      }
      int saved_threads = parallel::GlobalThreadCount();
      if (parallel_path) {
        // Widen the pool so the zero threshold genuinely dispatches.
        parallel::SetGlobalThreads(std::max(saved_threads, 4));
      }
      ScopedMatmulParallelThreshold threshold(
          parallel_path ? 0 : std::numeric_limits<int64_t>::max());
      AnalyticGradients(build_loss, params);
      if (parallel_path) parallel::SetGlobalThreads(saved_threads);
      for (size_t i = 0; i < params.size(); ++i) {
        result.serial_parallel_grad_diff =
            std::max(result.serial_parallel_grad_diff,
                     MaxAbsDiff(reference[i], params[i].grad()));
      }
    }
  }
  return result;
}

}  // namespace ag
}  // namespace clfd
