#include "autograd/grad_check.h"

#include <algorithm>
#include <cmath>

namespace clfd {
namespace ag {

GradCheckResult CheckGradients(
    const std::function<Var(const std::vector<Var>&)>& build_loss,
    const std::vector<Var>& params, float epsilon) {
  // Analytic pass.
  for (const Var& p : params) {
    p.node()->grad = Matrix(p.rows(), p.cols());
  }
  Var loss = build_loss(params);
  Backward(loss);

  GradCheckResult result;
  for (const Var& p : params) {
    Matrix& value = p.node()->value;
    for (int i = 0; i < value.size(); ++i) {
      float saved = value[i];
      value[i] = saved + epsilon;
      float up = build_loss(params).value()[0];
      value[i] = saved - epsilon;
      float down = build_loss(params).value()[0];
      value[i] = saved;
      float numeric = (up - down) / (2.0f * epsilon);
      float analytic = p.grad()[i];
      float abs_err = std::abs(numeric - analytic);
      float denom = std::max({std::abs(numeric), std::abs(analytic), 1.0f});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    }
  }
  return result;
}

}  // namespace ag
}  // namespace clfd
