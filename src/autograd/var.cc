#include "autograd/var.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"

namespace clfd {
namespace ag {

namespace {

// Creates an interior node whose requires_grad is inherited from parents.
Var MakeOp(Matrix value, std::vector<NodePtr> parents,
           std::function<void(Node*)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  bool any_grad = false;
  for (const NodePtr& p : parents) any_grad = any_grad || p->requires_grad;
  node->requires_grad = any_grad;
  if (any_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return Var(std::move(node));
}

void TopoSort(const NodePtr& root, std::vector<Node*>* order) {
  // Iterative post-order DFS (graphs can be thousands of nodes deep for
  // long LSTM unrolls; recursion would risk stack overflow).
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child++].get();
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

Var Constant(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return Var(std::move(node));
}

Var Param(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  return Var(std::move(node));
}

namespace {

// Shared engine for Backward / BackwardWithGrad. `seed` null means scalar
// seed 1 on every element of the root.
void BackwardImpl(const Var& root, const Matrix* seed) {
  assert(root.defined());
  if (!root.requires_grad()) return;
  std::vector<Node*> post_order;
  TopoSort(root.node(), &post_order);
  // Tape telemetry: graph depth is the main memory driver of training
  // (thousands of nodes per LSTM unroll), so expose the last-seen size, a
  // distribution, and a cumulative node count.
  CLFD_METRIC_COUNT("autograd.backward.calls", 1);
  CLFD_METRIC_COUNT("autograd.tape.nodes_total",
                    static_cast<int64_t>(post_order.size()));
  CLFD_METRIC_GAUGE_SET("autograd.tape.nodes",
                        static_cast<double>(post_order.size()));
  CLFD_METRIC_HIST_RECORD(
      "autograd.tape.size",
      ::clfd::obs::Histogram::ExponentialBounds(16.0, 2.0, 16),
      static_cast<double>(post_order.size()));
  for (Node* n : post_order) n->EnsureGrad();
  Node* r = root.node().get();
  if (seed != nullptr) {
    assert(seed->SameShape(r->value));
    r->grad.AddInPlace(*seed);
  } else {
    // d root / d root = 1.
    for (int i = 0; i < r->grad.size(); ++i) r->grad[i] += 1.0f;
  }
  // Reverse topological order = post-order reversed.
  for (auto it = post_order.rbegin(); it != post_order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn(*it);
  }
}

}  // namespace

void Backward(const Var& root) { BackwardImpl(root, nullptr); }

void BackwardWithGrad(const Var& root, const Matrix& seed) {
  BackwardImpl(root, &seed);
}

Var MatMul(const Var& a, const Var& b) {
  NodePtr an = a.node(), bn = b.node();
  return MakeOp(clfd::MatMul(an->value, bn->value), {an, bn},
                [an, bn](Node* out) {
                  if (an->requires_grad) {
                    an->EnsureGrad();
                    an->grad.AddInPlace(MatMulTransposeB(out->grad, bn->value));
                  }
                  if (bn->requires_grad) {
                    bn->EnsureGrad();
                    bn->grad.AddInPlace(MatMulTransposeA(an->value, out->grad));
                  }
                });
}

Var MatMulTransposeB(const Var& a, const Var& b) {
  NodePtr an = a.node(), bn = b.node();
  return MakeOp(clfd::MatMulTransposeB(an->value, bn->value), {an, bn},
                [an, bn](Node* out) {
                  // out = a b^T; d a = g b; d b = g^T a.
                  if (an->requires_grad) {
                    an->EnsureGrad();
                    an->grad.AddInPlace(clfd::MatMul(out->grad, bn->value));
                  }
                  if (bn->requires_grad) {
                    bn->EnsureGrad();
                    bn->grad.AddInPlace(MatMulTransposeA(out->grad, an->value));
                  }
                });
}

Var Add(const Var& a, const Var& b) {
  NodePtr an = a.node(), bn = b.node();
  return MakeOp(clfd::Add(an->value, bn->value), {an, bn}, [an, bn](Node* out) {
    if (an->requires_grad) {
      an->EnsureGrad();
      an->grad.AddInPlace(out->grad);
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      bn->grad.AddInPlace(out->grad);
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  NodePtr an = a.node(), bn = b.node();
  return MakeOp(clfd::Sub(an->value, bn->value), {an, bn}, [an, bn](Node* out) {
    if (an->requires_grad) {
      an->EnsureGrad();
      an->grad.AddInPlace(out->grad);
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      bn->grad.AddScaled(out->grad, -1.0f);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  NodePtr an = a.node(), bn = b.node();
  return MakeOp(clfd::Mul(an->value, bn->value), {an, bn}, [an, bn](Node* out) {
    if (an->requires_grad) {
      an->EnsureGrad();
      an->grad.AddInPlace(clfd::Mul(out->grad, bn->value));
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      bn->grad.AddInPlace(clfd::Mul(out->grad, an->value));
    }
  });
}

Var AddScalar(const Var& a, float s) {
  NodePtr an = a.node();
  return MakeOp(clfd::AddScalar(an->value, s), {an}, [an](Node* out) {
    an->EnsureGrad();
    an->grad.AddInPlace(out->grad);
  });
}

Var Scale(const Var& a, float s) {
  NodePtr an = a.node();
  return MakeOp(clfd::MulScalar(an->value, s), {an}, [an, s](Node* out) {
    an->EnsureGrad();
    an->grad.AddScaled(out->grad, s);
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  NodePtr an = a.node(), bn = bias.node();
  return MakeOp(clfd::AddRowBroadcast(an->value, bn->value), {an, bn},
                [an, bn](Node* out) {
                  if (an->requires_grad) {
                    an->EnsureGrad();
                    an->grad.AddInPlace(out->grad);
                  }
                  if (bn->requires_grad) {
                    bn->EnsureGrad();
                    for (int r = 0; r < out->grad.rows(); ++r) {
                      const float* grow = out->grad.row(r);
                      for (int c = 0; c < out->grad.cols(); ++c) {
                        bn->grad[c] += grow[c];
                      }
                    }
                  }
                });
}

Var RowScaleConst(const Var& a, const Matrix& col) {
  assert(col.cols() == 1 && col.rows() == a.rows());
  NodePtr an = a.node();
  Matrix value = an->value;
  for (int r = 0; r < value.rows(); ++r) {
    float s = col.at(r, 0);
    float* row = value.row(r);
    for (int c = 0; c < value.cols(); ++c) row[c] *= s;
  }
  return MakeOp(std::move(value), {an}, [an, col](Node* out) {
    an->EnsureGrad();
    for (int r = 0; r < out->grad.rows(); ++r) {
      float s = col.at(r, 0);
      const float* grow = out->grad.row(r);
      float* arow = an->grad.row(r);
      for (int c = 0; c < out->grad.cols(); ++c) arow[c] += s * grow[c];
    }
  });
}

Var Exp(const Var& a) {
  NodePtr an = a.node();
  Matrix value = clfd::Exp(an->value);
  return MakeOp(value, {an}, [an, value](Node* out) {
    an->EnsureGrad();
    an->grad.AddInPlace(clfd::Mul(out->grad, value));
  });
}

Var Log(const Var& a) {
  NodePtr an = a.node();
  return MakeOp(clfd::Log(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      an->grad[i] += out->grad[i] / std::max(an->value[i], 1e-12f);
    }
  });
}

Var Pow(const Var& a, float p) {
  NodePtr an = a.node();
  return MakeOp(clfd::Pow(an->value, p), {an}, [an, p](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      // d/dx x^p = p x^(p-1); clamp the base so p < 1 stays finite at 0.
      float base = std::max(an->value[i], 1e-12f);
      an->grad[i] += out->grad[i] * p * std::pow(base, p - 1.0f);
    }
  });
}

Var Tanh(const Var& a) {
  NodePtr an = a.node();
  Matrix value = clfd::Tanh(an->value);
  return MakeOp(value, {an}, [an, value](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      an->grad[i] += out->grad[i] * (1.0f - value[i] * value[i]);
    }
  });
}

Var Sigmoid(const Var& a) {
  NodePtr an = a.node();
  Matrix value = clfd::Sigmoid(an->value);
  return MakeOp(value, {an}, [an, value](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      an->grad[i] += out->grad[i] * value[i] * (1.0f - value[i]);
    }
  });
}

Var Relu(const Var& a) {
  NodePtr an = a.node();
  return MakeOp(clfd::Relu(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      if (an->value[i] > 0.0f) an->grad[i] += out->grad[i];
    }
  });
}

Var LeakyRelu(const Var& a, float slope) {
  NodePtr an = a.node();
  return MakeOp(clfd::LeakyRelu(an->value, slope), {an}, [an, slope](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      an->grad[i] += out->grad[i] * (an->value[i] > 0.0f ? 1.0f : slope);
    }
  });
}

Var SoftmaxRows(const Var& a) {
  NodePtr an = a.node();
  Matrix value = clfd::SoftmaxRows(an->value);
  return MakeOp(value, {an}, [an, value](Node* out) {
    an->EnsureGrad();
    // d x_j = s_j * (g_j - sum_k g_k s_k) per row.
    for (int r = 0; r < value.rows(); ++r) {
      const float* s = value.row(r);
      const float* g = out->grad.row(r);
      float* ar = an->grad.row(r);
      double dot = 0.0;
      for (int c = 0; c < value.cols(); ++c) dot += g[c] * s[c];
      for (int c = 0; c < value.cols(); ++c) {
        ar[c] += s[c] * (g[c] - static_cast<float>(dot));
      }
    }
  });
}

Var SumAll(const Var& a) {
  NodePtr an = a.node();
  Matrix value(1, 1);
  value[0] = clfd::SumAll(an->value);
  return MakeOp(std::move(value), {an}, [an](Node* out) {
    an->EnsureGrad();
    float g = out->grad[0];
    for (int i = 0; i < an->grad.size(); ++i) an->grad[i] += g;
  });
}

Var MeanAll(const Var& a) {
  float inv = a.value().size() > 0
                  ? 1.0f / static_cast<float>(a.value().size())
                  : 0.0f;
  return Scale(SumAll(a), inv);
}

Var SumRows(const Var& a) {
  NodePtr an = a.node();
  return MakeOp(clfd::SumRows(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int r = 0; r < an->grad.rows(); ++r) {
      float g = out->grad.at(r, 0);
      float* row = an->grad.row(r);
      for (int c = 0; c < an->grad.cols(); ++c) row[c] += g;
    }
  });
}

Var ConcatRows(const std::vector<Var>& blocks) {
  assert(!blocks.empty());
  std::vector<Matrix> values;
  std::vector<NodePtr> parents;
  values.reserve(blocks.size());
  for (const Var& b : blocks) {
    values.push_back(b.value());
    parents.push_back(b.node());
  }
  return MakeOp(clfd::ConcatRows(values), parents, [parents](Node* out) {
    int r = 0;
    for (const NodePtr& p : parents) {
      if (p->requires_grad) {
        p->EnsureGrad();
        for (int pr = 0; pr < p->value.rows(); ++pr) {
          const float* grow = out->grad.row(r + pr);
          float* prow = p->grad.row(pr);
          for (int c = 0; c < p->value.cols(); ++c) prow[c] += grow[c];
        }
      }
      r += p->value.rows();
    }
  });
}

Var SliceRows(const Var& a, int begin, int end) {
  NodePtr an = a.node();
  return MakeOp(clfd::SliceRows(an->value, begin, end), {an},
                [an, begin](Node* out) {
                  an->EnsureGrad();
                  for (int r = 0; r < out->grad.rows(); ++r) {
                    const float* grow = out->grad.row(r);
                    float* arow = an->grad.row(begin + r);
                    for (int c = 0; c < out->grad.cols(); ++c) {
                      arow[c] += grow[c];
                    }
                  }
                });
}

Var NormalizeRows(const Var& a) {
  NodePtr an = a.node();
  Matrix value = an->value;
  std::vector<float> norms(value.rows());
  for (int r = 0; r < value.rows(); ++r) {
    norms[r] = RowNorm(an->value, r);
    float* row = value.row(r);
    for (int c = 0; c < value.cols(); ++c) row[c] /= norms[r];
  }
  return MakeOp(std::move(value), {an}, [an, norms](Node* out) {
    an->EnsureGrad();
    // For y = x / |x|: dx = (g - y (g . y)) / |x|.
    for (int r = 0; r < out->grad.rows(); ++r) {
      const float* g = out->grad.row(r);
      const float* x = an->value.row(r);
      float* ar = an->grad.row(r);
      float inv = 1.0f / norms[r];
      double dot = 0.0;
      for (int c = 0; c < out->grad.cols(); ++c) {
        dot += g[c] * x[c] * inv;
      }
      for (int c = 0; c < out->grad.cols(); ++c) {
        ar[c] += inv * (g[c] - static_cast<float>(dot) * x[c] * inv);
      }
    }
  });
}

}  // namespace ag
}  // namespace clfd
