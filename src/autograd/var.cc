#include "autograd/var.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_set>

#include "autograd/tape_hooks.h"
#include "common/check.h"
#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace clfd {
namespace ag {

namespace {
// One capture/replay stream per thread — each shard worker of the sharded
// trainer captures or replays its own plan (see tape_hooks.h). Thread-local
// by design: no state is shared across threads.
// clfd-lint: allow(concurrency-mutable-global) clfd-analyze: allow(semantic-mutable-global)
thread_local TapeHooks* g_tape_hooks = nullptr;
}  // namespace

TapeHooks* SetTapeHooks(TapeHooks* hooks) {
  TapeHooks* prev = g_tape_hooks;
  g_tape_hooks = hooks;
  return prev;
}

TapeHooks* CurrentTapeHooks() { return g_tape_hooks; }

namespace {

// Pointer view over a contiguous Var array for OpDesc::inputs (the hooks
// take pointers to the builder's arguments, not copies; see tape_hooks.h).
// Stack storage covers every current call site — heap only beyond 64 blocks.
struct VarPtrArray {
  const Var* stack[64];
  std::vector<const Var*> heap;
  const Var* const* data;
  explicit VarPtrArray(const std::vector<Var>& vars) {
    const Var** out = stack;
    if (vars.size() > 64) {
      heap.resize(vars.size());
      out = heap.data();
    }
    for (size_t i = 0; i < vars.size(); ++i) out[i] = &vars[i];
    data = out;
  }
};

OpDesc Desc(const char* op, PlanForwardFn forward, const Var* const* inputs,
            int num_inputs) {
  OpDesc d;
  d.op = op;
  d.forward = forward;
  d.inputs = inputs;
  d.num_inputs = num_inputs;
  return d;
}

// Creates an interior node whose requires_grad is inherited from parents.
// `op` is the provenance tag the invariant checker reports; when checks are
// enabled every op output is scanned for NaN/Inf and every parent is
// verified to come from a tape that has not already been consumed by a
// backward pass (reusing one would double-propagate its gradients).
Var MakeOp(const char* op, Matrix value, std::vector<NodePtr> parents,
           std::function<void(Node*)> backward_fn) {
  // Fault probe: poisons one op output with NaN to rehearse numeric
  // corruption. With checks on, CheckFinite below turns it into an
  // InvariantError at the op boundary; with checks off it propagates to a
  // non-finite loss — both paths are watchdog-recoverable.
  if (fault::At("op.nan") && value.size() > 0) {
    value.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
  }
  if (check::Enabled()) {
    CheckFinite(value, op);
    for (const NodePtr& p : parents) {
      if (p->backward_runs > 0) {
        check::Fail(std::string("autograd tape misuse: op '") + op +
                    "' built on the output of '" + p->op +
                    "' whose tape was already consumed by a backward pass; "
                    "rebuild the forward graph instead of reusing it");
      }
    }
  }
  auto node = std::make_shared<Node>();
  node->op = op;
  node->value = std::move(value);
  bool any_grad = false;
  for (const NodePtr& p : parents) any_grad = any_grad || p->requires_grad;
  node->requires_grad = any_grad;
  if (any_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  Var out(std::move(node));
  CLFD_METRIC_COUNT("autograd.tape.nodes_created", 1);
  if (TapeHooks* h = CurrentTapeHooks()) h->OnNodeCreated(out.node());
  return out;
}

void TopoSort(const NodePtr& root, std::vector<Node*>* order) {
  // Iterative post-order DFS (graphs can be thousands of nodes deep for
  // long LSTM unrolls; recursion would risk stack overflow).
  // Pointer-identity membership set; it is never iterated, so its
  // unspecified ordering cannot leak into results.
  // clfd-lint: allow(determinism-unordered)
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child++].get();
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

Var Constant(Matrix value) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    Var out;
    if (h->OnLeaf("ag::Constant", &value, /*requires_grad=*/false, &out)) {
      return out;
    }
  }
  CheckFinite(value, "ag::Constant");
  auto node = std::make_shared<Node>();
  node->op = "ag::Constant";
  node->value = std::move(value);
  node->requires_grad = false;
  Var out(std::move(node));
  CLFD_METRIC_COUNT("autograd.tape.nodes_created", 1);
  if (TapeHooks* h = CurrentTapeHooks()) h->OnNodeCreated(out.node());
  return out;
}

Var Param(Matrix value) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    Var out;
    if (h->OnLeaf("ag::Param", &value, /*requires_grad=*/true, &out)) {
      return out;
    }
  }
  CheckFinite(value, "ag::Param");
  auto node = std::make_shared<Node>();
  node->op = "ag::Param";
  node->value = std::move(value);
  node->requires_grad = true;
  Var out(std::move(node));
  CLFD_METRIC_COUNT("autograd.tape.nodes_created", 1);
  if (TapeHooks* h = CurrentTapeHooks()) h->OnNodeCreated(out.node());
  return out;
}

namespace {

// Shared engine for Backward / BackwardWithGrad. `seed` null means scalar
// seed 1 on every element of the root.
void BackwardImpl(const Var& root, const Matrix* seed) {
  assert(root.defined());
  if (TapeHooks* h = CurrentTapeHooks()) {
    if (h->OnBackward(root, seed)) return;
  }
  if (!root.requires_grad()) return;
  CLFD_PROF_SCOPE("autograd.backward");
  std::vector<Node*> post_order;
  TopoSort(root.node(), &post_order);
  if (TapeHooks* h = CurrentTapeHooks()) {
    h->OnBackwardOrder(root, seed, post_order);
  }
  // Tape telemetry: graph depth is the main memory driver of training
  // (thousands of nodes per LSTM unroll), so expose the last-seen size, a
  // distribution, and a cumulative node count.
  CLFD_METRIC_COUNT("autograd.backward.calls", 1);
  CLFD_METRIC_COUNT("autograd.tape.nodes_total",
                    static_cast<int64_t>(post_order.size()));
  CLFD_METRIC_GAUGE_SET("autograd.tape.nodes",
                        static_cast<double>(post_order.size()));
  CLFD_METRIC_HIST_RECORD(
      "autograd.tape.size",
      ::clfd::obs::Histogram::ExponentialBounds(16.0, 2.0, 16),
      static_cast<double>(post_order.size()));
  for (Node* n : post_order) n->EnsureGrad();
  Node* r = root.node().get();
  if (seed != nullptr) {
    if (check::Enabled() && !seed->SameShape(r->value)) {
      check::Fail(std::string("BackwardWithGrad: seed shape does not match "
                              "root '") +
                  r->op + "' value shape");
    }
    assert(seed->SameShape(r->value));
    if (check::Enabled()) CheckFinite(*seed, "BackwardWithGrad seed");
    r->grad.AddInPlace(*seed);
  } else {
    // d root / d root = 1.
    for (int i = 0; i < r->grad.size(); ++i) r->grad[i] += 1.0f;
  }
  // Reverse topological order = post-order reversed.
  for (auto it = post_order.rbegin(); it != post_order.rend(); ++it) {
    Node* n = *it;
    if (!n->backward_fn) continue;
    if (check::Enabled() && n->backward_runs > 0) {
      check::Fail(std::string("autograd tape misuse: backward through op '") +
                  n->op + "' ran twice; Backward was called again on a "
                  "consumed tape (grads would double-count)");
    }
    ++n->backward_runs;
    n->backward_fn(n);
  }
}

}  // namespace

void Backward(const Var& root) { BackwardImpl(root, nullptr); }

void BackwardWithGrad(const Var& root, const Matrix& seed) {
  BackwardImpl(root, &seed);
}

namespace {

// Planned forward bodies write through the *Into kernels so replay reuses
// the plan's persistent output buffers instead of allocating fresh ones
// each step (DESIGN.md §15). The Into kernels share loop bodies with the
// value-returning kernels the dynamic builders call, so both modes stay
// bitwise identical.
void FwdMatMul(Node* out, Node* const* p, int, const OpCall&) {
  clfd::MatMulInto(p[0]->value, p[1]->value, &out->value);
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a, &b};
    Var out;
    if (h->OnOp(Desc("ag::MatMul", &FwdMatMul, ins, 2),
                                 &out)) {
      return out;
    }
  }
  NodePtr an = a.node(), bn = b.node();
  return MakeOp("ag::MatMul", clfd::MatMul(an->value, bn->value), {an, bn},
                [an, bn](Node* out) {
                  if (an->requires_grad) {
                    an->EnsureGrad();
                    an->grad.AddInPlace(MatMulTransposeB(out->grad, bn->value));
                  }
                  if (bn->requires_grad) {
                    bn->EnsureGrad();
                    bn->grad.AddInPlace(MatMulTransposeA(an->value, out->grad));
                  }
                });
}

namespace {

void FwdMatMulTransposeB(Node* out, Node* const* p, int, const OpCall&) {
  clfd::MatMulTransposeBInto(p[0]->value, p[1]->value, &out->value);
}

}  // namespace

Var MatMulTransposeB(const Var& a, const Var& b) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a, &b};
    Var out;
    if (h->OnOp(
            Desc("ag::MatMulTransposeB", &FwdMatMulTransposeB, ins, 2),
            &out)) {
      return out;
    }
  }
  NodePtr an = a.node(), bn = b.node();
  return MakeOp("ag::MatMulTransposeB", clfd::MatMulTransposeB(an->value, bn->value), {an, bn},
                [an, bn](Node* out) {
                  // out = a b^T; d a = g b; d b = g^T a.
                  if (an->requires_grad) {
                    an->EnsureGrad();
                    an->grad.AddInPlace(clfd::MatMul(out->grad, bn->value));
                  }
                  if (bn->requires_grad) {
                    bn->EnsureGrad();
                    bn->grad.AddInPlace(MatMulTransposeA(out->grad, an->value));
                  }
                });
}

namespace {

void FwdAdd(Node* out, Node* const* p, int, const OpCall&) {
  clfd::AddInto(p[0]->value, p[1]->value, &out->value);
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a, &b};
    Var out;
    if (h->OnOp(Desc("ag::Add", &FwdAdd, ins, 2), &out)) {
      return out;
    }
  }
  NodePtr an = a.node(), bn = b.node();
  return MakeOp("ag::Add", clfd::Add(an->value, bn->value), {an, bn}, [an, bn](Node* out) {
    if (an->requires_grad) {
      an->EnsureGrad();
      an->grad.AddInPlace(out->grad);
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      bn->grad.AddInPlace(out->grad);
    }
  });
}

namespace {

void FwdSub(Node* out, Node* const* p, int, const OpCall&) {
  clfd::SubInto(p[0]->value, p[1]->value, &out->value);
}

}  // namespace

Var Sub(const Var& a, const Var& b) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a, &b};
    Var out;
    if (h->OnOp(Desc("ag::Sub", &FwdSub, ins, 2), &out)) {
      return out;
    }
  }
  NodePtr an = a.node(), bn = b.node();
  return MakeOp("ag::Sub", clfd::Sub(an->value, bn->value), {an, bn}, [an, bn](Node* out) {
    if (an->requires_grad) {
      an->EnsureGrad();
      an->grad.AddInPlace(out->grad);
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      bn->grad.AddScaled(out->grad, -1.0f);
    }
  });
}

namespace {

void FwdMul(Node* out, Node* const* p, int, const OpCall&) {
  clfd::MulInto(p[0]->value, p[1]->value, &out->value);
}

}  // namespace

Var Mul(const Var& a, const Var& b) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a, &b};
    Var out;
    if (h->OnOp(Desc("ag::Mul", &FwdMul, ins, 2), &out)) {
      return out;
    }
  }
  NodePtr an = a.node(), bn = b.node();
  return MakeOp("ag::Mul", clfd::Mul(an->value, bn->value), {an, bn}, [an, bn](Node* out) {
    if (an->requires_grad) {
      an->EnsureGrad();
      an->grad.AddInPlace(clfd::Mul(out->grad, bn->value));
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      bn->grad.AddInPlace(clfd::Mul(out->grad, an->value));
    }
  });
}

namespace {

void FwdAddScalar(Node* out, Node* const* p, int, const OpCall& call) {
  clfd::AddScalarInto(p[0]->value, call.f0, &out->value);
}

}  // namespace

Var AddScalar(const Var& a, float s) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    OpDesc d = Desc("ag::AddScalar", &FwdAddScalar, ins, 1);
    d.call.f0 = s;
    Var out;
    if (h->OnOp(d, &out)) return out;
  }
  NodePtr an = a.node();
  return MakeOp("ag::AddScalar", clfd::AddScalar(an->value, s), {an}, [an](Node* out) {
    an->EnsureGrad();
    an->grad.AddInPlace(out->grad);
  });
}

namespace {

void FwdScale(Node* out, Node* const* p, int, const OpCall& call) {
  clfd::MulScalarInto(p[0]->value, call.f0, &out->value);
}

}  // namespace

Var Scale(const Var& a, float s) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    OpDesc d = Desc("ag::Scale", &FwdScale, ins, 1);
    d.call.f0 = s;
    Var out;
    if (h->OnOp(d, &out)) return out;
  }
  NodePtr an = a.node();
  return MakeOp("ag::Scale", clfd::MulScalar(an->value, s), {an}, [an, s](Node* out) {
    an->EnsureGrad();
    an->grad.AddScaled(out->grad, s);
  });
}

namespace {

void FwdAddRowBroadcast(Node* out, Node* const* p, int, const OpCall&) {
  clfd::AddRowBroadcastInto(p[0]->value, p[1]->value, &out->value);
}

}  // namespace

Var AddRowBroadcast(const Var& a, const Var& bias) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a, &bias};
    Var out;
    if (h->OnOp(
            Desc("ag::AddRowBroadcast", &FwdAddRowBroadcast, ins, 2), &out)) {
      return out;
    }
  }
  NodePtr an = a.node(), bn = bias.node();
  return MakeOp("ag::AddRowBroadcast", clfd::AddRowBroadcast(an->value, bn->value), {an, bn},
                [an, bn](Node* out) {
                  if (an->requires_grad) {
                    an->EnsureGrad();
                    an->grad.AddInPlace(out->grad);
                  }
                  if (bn->requires_grad) {
                    bn->EnsureGrad();
                    for (int r = 0; r < out->grad.rows(); ++r) {
                      const float* grow = out->grad.row(r);
                      for (int c = 0; c < out->grad.cols(); ++c) {
                        bn->grad[c] += grow[c];
                      }
                    }
                  }
                });
}

namespace {

void RowScaleForwardInto(const Matrix& a, const Matrix& col, Matrix* out) {
  clfd::CopyInto(a, out);
  for (int r = 0; r < out->rows(); ++r) {
    float s = col.at(r, 0);
    float* row = out->row(r);
    for (int c = 0; c < out->cols(); ++c) row[c] *= s;
  }
}

Matrix RowScaleForward(const Matrix& a, const Matrix& col) {
  Matrix value;
  RowScaleForwardInto(a, col, &value);
  return value;
}

void FwdRowScaleConst(Node* out, Node* const* p, int, const OpCall& call) {
  RowScaleForwardInto(p[0]->value, *call.aux_copy, &out->value);
  // CopyInto (not assignment) so replay reuses the node's persistent aux
  // buffer instead of reallocating it from the current arena context.
  clfd::CopyInto(*call.aux_copy, &out->aux);
}

}  // namespace

Var RowScaleConst(const Var& a, const Matrix& col) {
  assert(col.cols() == 1 && col.rows() == a.rows());
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    OpDesc d = Desc("ag::RowScaleConst", &FwdRowScaleConst, ins, 1);
    d.call.aux_copy = &col;
    Var out;
    if (h->OnOp(d, &out)) return out;
  }
  NodePtr an = a.node();
  Var v = MakeOp("ag::RowScaleConst", RowScaleForward(an->value, col), {an},
                 [an](Node* out) {
                   an->EnsureGrad();
                   for (int r = 0; r < out->grad.rows(); ++r) {
                     float s = out->aux.at(r, 0);
                     const float* grow = out->grad.row(r);
                     float* arow = an->grad.row(r);
                     for (int c = 0; c < out->grad.cols(); ++c) {
                       arow[c] += s * grow[c];
                     }
                   }
                 });
  v.node()->aux = col;
  return v;
}

namespace {

void FwdExp(Node* out, Node* const* p, int, const OpCall&) {
  clfd::ExpInto(p[0]->value, &out->value);
}

}  // namespace

Var Exp(const Var& a) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    Var out;
    if (h->OnOp(Desc("ag::Exp", &FwdExp, ins, 1), &out)) {
      return out;
    }
  }
  NodePtr an = a.node();
  return MakeOp("ag::Exp", clfd::Exp(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    an->grad.AddInPlace(clfd::Mul(out->grad, out->value));
  });
}

namespace {

void FwdLog(Node* out, Node* const* p, int, const OpCall&) {
  clfd::LogInto(p[0]->value, &out->value);
}

}  // namespace

Var Log(const Var& a) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    Var out;
    if (h->OnOp(Desc("ag::Log", &FwdLog, ins, 1), &out)) {
      return out;
    }
  }
  NodePtr an = a.node();
  return MakeOp("ag::Log", clfd::Log(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      an->grad[i] += out->grad[i] / std::max(an->value[i], 1e-12f);
    }
  });
}

namespace {

void FwdPow(Node* out, Node* const* p, int, const OpCall& call) {
  clfd::PowInto(p[0]->value, call.f0, &out->value);
}

}  // namespace

Var Pow(const Var& a, float p) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    OpDesc d = Desc("ag::Pow", &FwdPow, ins, 1);
    d.call.f0 = p;
    Var out;
    if (h->OnOp(d, &out)) return out;
  }
  NodePtr an = a.node();
  return MakeOp("ag::Pow", clfd::Pow(an->value, p), {an}, [an, p](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      // d/dx x^p = p x^(p-1); clamp the base so p < 1 stays finite at 0.
      float base = std::max(an->value[i], 1e-12f);
      an->grad[i] += out->grad[i] * p * std::pow(base, p - 1.0f);
    }
  });
}

namespace {

void FwdTanh(Node* out, Node* const* p, int, const OpCall&) {
  clfd::TanhInto(p[0]->value, &out->value);
}

}  // namespace

Var Tanh(const Var& a) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    Var out;
    if (h->OnOp(Desc("ag::Tanh", &FwdTanh, ins, 1), &out)) {
      return out;
    }
  }
  NodePtr an = a.node();
  return MakeOp("ag::Tanh", clfd::Tanh(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      float y = out->value[i];
      an->grad[i] += out->grad[i] * (1.0f - y * y);
    }
  });
}

namespace {

void FwdSigmoid(Node* out, Node* const* p, int, const OpCall&) {
  clfd::SigmoidInto(p[0]->value, &out->value);
}

}  // namespace

Var Sigmoid(const Var& a) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    Var out;
    if (h->OnOp(Desc("ag::Sigmoid", &FwdSigmoid, ins, 1),
                                 &out)) {
      return out;
    }
  }
  NodePtr an = a.node();
  return MakeOp("ag::Sigmoid", clfd::Sigmoid(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      float y = out->value[i];
      an->grad[i] += out->grad[i] * y * (1.0f - y);
    }
  });
}

namespace {

void FwdRelu(Node* out, Node* const* p, int, const OpCall&) {
  clfd::ReluInto(p[0]->value, &out->value);
}

}  // namespace

Var Relu(const Var& a) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    Var out;
    if (h->OnOp(Desc("ag::Relu", &FwdRelu, ins, 1), &out)) {
      return out;
    }
  }
  NodePtr an = a.node();
  return MakeOp("ag::Relu", clfd::Relu(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      if (an->value[i] > 0.0f) an->grad[i] += out->grad[i];
    }
  });
}

namespace {

void FwdLeakyRelu(Node* out, Node* const* p, int, const OpCall& call) {
  clfd::LeakyReluInto(p[0]->value, call.f0, &out->value);
}

}  // namespace

Var LeakyRelu(const Var& a, float slope) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    OpDesc d = Desc("ag::LeakyRelu", &FwdLeakyRelu, ins, 1);
    d.call.f0 = slope;
    Var out;
    if (h->OnOp(d, &out)) return out;
  }
  NodePtr an = a.node();
  return MakeOp("ag::LeakyRelu", clfd::LeakyRelu(an->value, slope), {an}, [an, slope](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      an->grad[i] += out->grad[i] * (an->value[i] > 0.0f ? 1.0f : slope);
    }
  });
}

namespace {

void FwdSoftmaxRows(Node* out, Node* const* p, int, const OpCall&) {
  clfd::SoftmaxRowsInto(p[0]->value, &out->value);
}

}  // namespace

Var SoftmaxRows(const Var& a) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    Var out;
    if (h->OnOp(
            Desc("ag::SoftmaxRows", &FwdSoftmaxRows, ins, 1), &out)) {
      return out;
    }
  }
  NodePtr an = a.node();
  return MakeOp("ag::SoftmaxRows", clfd::SoftmaxRows(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    // d x_j = s_j * (g_j - sum_k g_k s_k) per row.
    for (int r = 0; r < out->value.rows(); ++r) {
      const float* s = out->value.row(r);
      const float* g = out->grad.row(r);
      float* ar = an->grad.row(r);
      double dot = 0.0;
      for (int c = 0; c < out->value.cols(); ++c) dot += g[c] * s[c];
      for (int c = 0; c < out->value.cols(); ++c) {
        ar[c] += s[c] * (g[c] - static_cast<float>(dot));
      }
    }
  });
}

namespace {

void FwdSumAll(Node* out, Node* const* p, int, const OpCall&) {
  clfd::EnsureShape(&out->value, 1, 1, /*zeroed=*/false);
  out->value[0] = clfd::SumAll(p[0]->value);
}

}  // namespace

Var SumAll(const Var& a) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    Var out;
    if (h->OnOp(Desc("ag::SumAll", &FwdSumAll, ins, 1),
                                 &out)) {
      return out;
    }
  }
  NodePtr an = a.node();
  Matrix value(1, 1);
  value[0] = clfd::SumAll(an->value);
  return MakeOp("ag::SumAll", std::move(value), {an}, [an](Node* out) {
    an->EnsureGrad();
    float g = out->grad[0];
    for (int i = 0; i < an->grad.size(); ++i) an->grad[i] += g;
  });
}

Var MeanAll(const Var& a) {
  float inv = a.value().size() > 0
                  ? 1.0f / static_cast<float>(a.value().size())
                  : 0.0f;
  return Scale(SumAll(a), inv);
}

namespace {

void FwdSumRows(Node* out, Node* const* p, int, const OpCall&) {
  clfd::SumRowsInto(p[0]->value, &out->value);
}

}  // namespace

Var SumRows(const Var& a) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    Var out;
    if (h->OnOp(Desc("ag::SumRows", &FwdSumRows, ins, 1),
                                 &out)) {
      return out;
    }
  }
  NodePtr an = a.node();
  return MakeOp("ag::SumRows", clfd::SumRows(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int r = 0; r < an->grad.rows(); ++r) {
      float g = out->grad.at(r, 0);
      float* row = an->grad.row(r);
      for (int c = 0; c < an->grad.cols(); ++c) row[c] += g;
    }
  });
}

namespace {

// Pointer view over the parents' values for the pointer-based concat
// kernels — no per-call Matrix copies. Stack storage covers every current
// call site; heap only beyond 64 blocks (mirrors VarPtrArray above).
struct MatrixPtrArray {
  const Matrix* stack[64];
  std::vector<const Matrix*> heap;
  const Matrix* const* data;
  MatrixPtrArray(Node* const* p, int np) {
    const Matrix** out = stack;
    if (np > 64) {
      heap.resize(np);
      out = heap.data();
    }
    for (int i = 0; i < np; ++i) out[i] = &p[i]->value;
    data = out;
  }
};

void FwdConcatRows(Node* out, Node* const* p, int np, const OpCall&) {
  MatrixPtrArray blocks(p, np);
  clfd::ConcatRowsInto(blocks.data, np, &out->value);
}

}  // namespace

Var ConcatRows(const std::vector<Var>& blocks) {
  assert(!blocks.empty());
  if (TapeHooks* h = CurrentTapeHooks()) {
    VarPtrArray ins(blocks);
    Var out;
    if (h->OnOp(
            Desc("ag::ConcatRows", &FwdConcatRows, ins.data,
                 static_cast<int>(blocks.size())),
            &out)) {
      return out;
    }
  }
  std::vector<Matrix> values;
  std::vector<NodePtr> parents;
  values.reserve(blocks.size());
  for (const Var& b : blocks) {
    values.push_back(b.value());
    parents.push_back(b.node());
  }
  return MakeOp("ag::ConcatRows", clfd::ConcatRows(values), parents, [parents](Node* out) {
    int r = 0;
    for (const NodePtr& p : parents) {
      if (p->requires_grad) {
        p->EnsureGrad();
        for (int pr = 0; pr < p->value.rows(); ++pr) {
          const float* grow = out->grad.row(r + pr);
          float* prow = p->grad.row(pr);
          for (int c = 0; c < p->value.cols(); ++c) prow[c] += grow[c];
        }
      }
      r += p->value.rows();
    }
  });
}

namespace {

void FwdSliceRows(Node* out, Node* const* p, int, const OpCall& call) {
  clfd::SliceRowsInto(p[0]->value, call.i0, call.i1, &out->value);
}

}  // namespace

Var SliceRows(const Var& a, int begin, int end) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    OpDesc d = Desc("ag::SliceRows", &FwdSliceRows, ins, 1);
    d.call.i0 = begin;
    d.call.i1 = end;
    Var out;
    if (h->OnOp(d, &out)) return out;
  }
  NodePtr an = a.node();
  return MakeOp("ag::SliceRows", clfd::SliceRows(an->value, begin, end), {an},
                [an, begin](Node* out) {
                  an->EnsureGrad();
                  for (int r = 0; r < out->grad.rows(); ++r) {
                    const float* grow = out->grad.row(r);
                    float* arow = an->grad.row(begin + r);
                    for (int c = 0; c < out->grad.cols(); ++c) {
                      arow[c] += grow[c];
                    }
                  }
                });
}

namespace {

void FwdConcatCols(Node* out, Node* const* p, int np, const OpCall&) {
  MatrixPtrArray blocks(p, np);
  clfd::ConcatColsInto(blocks.data, np, &out->value);
}

}  // namespace

Var ConcatCols(const std::vector<Var>& blocks) {
  assert(!blocks.empty());
  if (TapeHooks* h = CurrentTapeHooks()) {
    VarPtrArray ins(blocks);
    Var out;
    if (h->OnOp(
            Desc("ag::ConcatCols", &FwdConcatCols, ins.data,
                 static_cast<int>(blocks.size())),
            &out)) {
      return out;
    }
  }
  std::vector<Matrix> values;
  std::vector<NodePtr> parents;
  values.reserve(blocks.size());
  for (const Var& b : blocks) {
    values.push_back(b.value());
    parents.push_back(b.node());
  }
  return MakeOp("ag::ConcatCols", clfd::ConcatCols(values), parents,
                [parents](Node* out) {
                  int c0 = 0;
                  for (const NodePtr& p : parents) {
                    if (p->requires_grad) {
                      p->EnsureGrad();
                      for (int r = 0; r < p->value.rows(); ++r) {
                        const float* grow = out->grad.row(r);
                        float* prow = p->grad.row(r);
                        for (int c = 0; c < p->value.cols(); ++c) {
                          prow[c] += grow[c0 + c];
                        }
                      }
                    }
                    c0 += p->value.cols();
                  }
                });
}

namespace {

void FwdSliceCols(Node* out, Node* const* p, int, const OpCall& call) {
  clfd::SliceColsInto(p[0]->value, call.i0, call.i1, &out->value);
}

}  // namespace

Var SliceCols(const Var& a, int begin, int end) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    OpDesc d = Desc("ag::SliceCols", &FwdSliceCols, ins, 1);
    d.call.i0 = begin;
    d.call.i1 = end;
    Var out;
    if (h->OnOp(d, &out)) return out;
  }
  NodePtr an = a.node();
  return MakeOp("ag::SliceCols", clfd::SliceCols(an->value, begin, end), {an},
                [an, begin](Node* out) {
                  an->EnsureGrad();
                  for (int r = 0; r < out->grad.rows(); ++r) {
                    const float* grow = out->grad.row(r);
                    float* arow = an->grad.row(r);
                    for (int c = 0; c < out->grad.cols(); ++c) {
                      arow[begin + c] += grow[c];
                    }
                  }
                });
}

namespace {

void FwdLstmPackedMatMul(Node* out, Node* const* p, int, const OpCall&) {
  clfd::MatMulInto(p[0]->value, p[1]->value, &out->value);
}

}  // namespace

Var LstmPackedMatMul(const Var& x, const Var& w) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&x, &w};
    Var out;
    if (h->OnOp(
            Desc("ag::LstmPackedMatMul", &FwdLstmPackedMatMul, ins, 2),
            &out)) {
      return out;
    }
  }
  NodePtr xn = x.node(), wn = w.node();
  return MakeOp("ag::LstmPackedMatMul", clfd::MatMul(xn->value, wn->value),
                {xn, wn}, [xn, wn](Node* out) {
                  if (xn->requires_grad) {
                    xn->EnsureGrad();
                    MatMulTransposeBGateBlockedAddInto(out->grad, wn->value,
                                                       &xn->grad);
                  }
                  if (wn->requires_grad) {
                    wn->EnsureGrad();
                    wn->grad.AddInPlace(MatMulTransposeA(xn->value, out->grad));
                  }
                });
}

namespace {

void FwdLstmInputProjection(Node* out, Node* const* p, int,
                            const OpCall& call) {
  clfd::MatMulInto(*call.aux_move, p[0]->value, &out->value);
  // The input block is fresh per step (built by the caller), so the aux
  // binding stays a move — it is compute input, not a reusable buffer.
  out->aux = std::move(*call.aux_move);
}

}  // namespace

Var LstmInputProjection(Matrix xcat, const Var& w, int block_rows) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&w};
    OpDesc d = Desc("ag::LstmInputProjection", &FwdLstmInputProjection, ins, 1);
    d.call.i0 = block_rows;
    d.call.aux_move = &xcat;
    Var out;
    if (h->OnOp(d, &out)) return out;
  }
  NodePtr wn = w.node();
  Matrix value = clfd::MatMul(xcat, wn->value);
  Var v = MakeOp("ag::LstmInputProjection", std::move(value), {wn},
                 [wn, block_rows](Node* out) {
                   wn->EnsureGrad();
                   MatMulTransposeATimeBlockedAddInto(out->aux, out->grad,
                                                      block_rows, &wn->grad);
                 });
  v.node()->aux = std::move(xcat);
  return v;
}

namespace {

void FwdLstmGates(Node* out, Node* const* p, int, const OpCall&) {
  clfd::LstmGatesForward(p[0]->value, p[1]->value, &out->value, &out->aux);
}

}  // namespace

Var LstmGates(const Var& pre, const Var& hc_prev) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&pre, &hc_prev};
    Var out;
    if (h->OnOp(Desc("ag::LstmGates", &FwdLstmGates, ins, 2),
                                 &out)) {
      return out;
    }
  }
  NodePtr pn = pre.node(), hn = hc_prev.node();
  Matrix hc, acts;
  clfd::LstmGatesForward(pn->value, hn->value, &hc, &acts);
  Var v = MakeOp("ag::LstmGates", std::move(hc), {pn, hn},
                 [pn, hn](Node* out) {
                   Matrix scratch;
                   Matrix* dpre = nullptr;
                   if (pn->requires_grad) {
                     pn->EnsureGrad();
                     dpre = &pn->grad;
                   } else {
                     scratch = Matrix(pn->value.rows(), pn->value.cols());
                     dpre = &scratch;
                   }
                   Matrix* dhc = nullptr;
                   if (hn->requires_grad) {
                     hn->EnsureGrad();
                     dhc = &hn->grad;
                   }
                   clfd::LstmGatesBackward(out->grad, out->aux, hn->value,
                                           dpre, dhc);
                 });
  v.node()->aux = std::move(acts);
  return v;
}

namespace {

void NormalizeRowsForwardInto(const Matrix& a, Matrix* value, Matrix* norms) {
  clfd::CopyInto(a, value);
  clfd::EnsureShape(norms, a.rows(), 1, /*zeroed=*/false);
  for (int r = 0; r < a.rows(); ++r) {
    float n = RowNorm(a, r);
    norms->at(r, 0) = n;
    float* row = value->row(r);
    for (int c = 0; c < a.cols(); ++c) row[c] /= n;
  }
}

Matrix NormalizeRowsForward(const Matrix& a, Matrix* norms) {
  Matrix value;
  NormalizeRowsForwardInto(a, &value, norms);
  return value;
}

void FwdNormalizeRows(Node* out, Node* const* p, int, const OpCall&) {
  NormalizeRowsForwardInto(p[0]->value, &out->value, &out->aux);
}

}  // namespace

Var NormalizeRows(const Var& a) {
  if (TapeHooks* h = CurrentTapeHooks()) {
    const Var* ins[] = {&a};
    Var out;
    if (h->OnOp(
            Desc("ag::NormalizeRows", &FwdNormalizeRows, ins, 1), &out)) {
      return out;
    }
  }
  NodePtr an = a.node();
  Matrix norms;
  Var v = MakeOp("ag::NormalizeRows", NormalizeRowsForward(an->value, &norms),
                 {an}, [an](Node* out) {
                   an->EnsureGrad();
                   // For y = x / |x|: dx = (g - y (g . y)) / |x|.
                   for (int r = 0; r < out->grad.rows(); ++r) {
                     const float* g = out->grad.row(r);
                     const float* x = an->value.row(r);
                     float* ar = an->grad.row(r);
                     float inv = 1.0f / out->aux.at(r, 0);
                     double dot = 0.0;
                     for (int c = 0; c < out->grad.cols(); ++c) {
                       dot += g[c] * x[c] * inv;
                     }
                     for (int c = 0; c < out->grad.cols(); ++c) {
                       ar[c] += inv * (g[c] - static_cast<float>(dot) * x[c] * inv);
                     }
                   }
                 });
  v.node()->aux = std::move(norms);
  return v;
}

}  // namespace ag
}  // namespace clfd
