#include "autograd/var.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/check.h"
#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace clfd {
namespace ag {

namespace {

// Creates an interior node whose requires_grad is inherited from parents.
// `op` is the provenance tag the invariant checker reports; when checks are
// enabled every op output is scanned for NaN/Inf and every parent is
// verified to come from a tape that has not already been consumed by a
// backward pass (reusing one would double-propagate its gradients).
Var MakeOp(const char* op, Matrix value, std::vector<NodePtr> parents,
           std::function<void(Node*)> backward_fn) {
  // Fault probe: poisons one op output with NaN to rehearse numeric
  // corruption. With checks on, CheckFinite below turns it into an
  // InvariantError at the op boundary; with checks off it propagates to a
  // non-finite loss — both paths are watchdog-recoverable.
  if (fault::At("op.nan") && value.size() > 0) {
    value.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
  }
  if (check::Enabled()) {
    CheckFinite(value, op);
    for (const NodePtr& p : parents) {
      if (p->backward_runs > 0) {
        check::Fail(std::string("autograd tape misuse: op '") + op +
                    "' built on the output of '" + p->op +
                    "' whose tape was already consumed by a backward pass; "
                    "rebuild the forward graph instead of reusing it");
      }
    }
  }
  auto node = std::make_shared<Node>();
  node->op = op;
  node->value = std::move(value);
  bool any_grad = false;
  for (const NodePtr& p : parents) any_grad = any_grad || p->requires_grad;
  node->requires_grad = any_grad;
  if (any_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return Var(std::move(node));
}

void TopoSort(const NodePtr& root, std::vector<Node*>* order) {
  // Iterative post-order DFS (graphs can be thousands of nodes deep for
  // long LSTM unrolls; recursion would risk stack overflow).
  // Pointer-identity membership set; it is never iterated, so its
  // unspecified ordering cannot leak into results.
  // clfd-lint: allow(determinism-unordered)
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child++].get();
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

Var Constant(Matrix value) {
  CheckFinite(value, "ag::Constant");
  auto node = std::make_shared<Node>();
  node->op = "ag::Constant";
  node->value = std::move(value);
  node->requires_grad = false;
  return Var(std::move(node));
}

Var Param(Matrix value) {
  CheckFinite(value, "ag::Param");
  auto node = std::make_shared<Node>();
  node->op = "ag::Param";
  node->value = std::move(value);
  node->requires_grad = true;
  return Var(std::move(node));
}

namespace {

// Shared engine for Backward / BackwardWithGrad. `seed` null means scalar
// seed 1 on every element of the root.
void BackwardImpl(const Var& root, const Matrix* seed) {
  assert(root.defined());
  if (!root.requires_grad()) return;
  CLFD_PROF_SCOPE("autograd.backward");
  std::vector<Node*> post_order;
  TopoSort(root.node(), &post_order);
  // Tape telemetry: graph depth is the main memory driver of training
  // (thousands of nodes per LSTM unroll), so expose the last-seen size, a
  // distribution, and a cumulative node count.
  CLFD_METRIC_COUNT("autograd.backward.calls", 1);
  CLFD_METRIC_COUNT("autograd.tape.nodes_total",
                    static_cast<int64_t>(post_order.size()));
  CLFD_METRIC_GAUGE_SET("autograd.tape.nodes",
                        static_cast<double>(post_order.size()));
  CLFD_METRIC_HIST_RECORD(
      "autograd.tape.size",
      ::clfd::obs::Histogram::ExponentialBounds(16.0, 2.0, 16),
      static_cast<double>(post_order.size()));
  for (Node* n : post_order) n->EnsureGrad();
  Node* r = root.node().get();
  if (seed != nullptr) {
    if (check::Enabled() && !seed->SameShape(r->value)) {
      check::Fail(std::string("BackwardWithGrad: seed shape does not match "
                              "root '") +
                  r->op + "' value shape");
    }
    assert(seed->SameShape(r->value));
    if (check::Enabled()) CheckFinite(*seed, "BackwardWithGrad seed");
    r->grad.AddInPlace(*seed);
  } else {
    // d root / d root = 1.
    for (int i = 0; i < r->grad.size(); ++i) r->grad[i] += 1.0f;
  }
  // Reverse topological order = post-order reversed.
  for (auto it = post_order.rbegin(); it != post_order.rend(); ++it) {
    Node* n = *it;
    if (!n->backward_fn) continue;
    if (check::Enabled() && n->backward_runs > 0) {
      check::Fail(std::string("autograd tape misuse: backward through op '") +
                  n->op + "' ran twice; Backward was called again on a "
                  "consumed tape (grads would double-count)");
    }
    ++n->backward_runs;
    n->backward_fn(n);
  }
}

}  // namespace

void Backward(const Var& root) { BackwardImpl(root, nullptr); }

void BackwardWithGrad(const Var& root, const Matrix& seed) {
  BackwardImpl(root, &seed);
}

Var MatMul(const Var& a, const Var& b) {
  NodePtr an = a.node(), bn = b.node();
  return MakeOp("ag::MatMul", clfd::MatMul(an->value, bn->value), {an, bn},
                [an, bn](Node* out) {
                  if (an->requires_grad) {
                    an->EnsureGrad();
                    an->grad.AddInPlace(MatMulTransposeB(out->grad, bn->value));
                  }
                  if (bn->requires_grad) {
                    bn->EnsureGrad();
                    bn->grad.AddInPlace(MatMulTransposeA(an->value, out->grad));
                  }
                });
}

Var MatMulTransposeB(const Var& a, const Var& b) {
  NodePtr an = a.node(), bn = b.node();
  return MakeOp("ag::MatMulTransposeB", clfd::MatMulTransposeB(an->value, bn->value), {an, bn},
                [an, bn](Node* out) {
                  // out = a b^T; d a = g b; d b = g^T a.
                  if (an->requires_grad) {
                    an->EnsureGrad();
                    an->grad.AddInPlace(clfd::MatMul(out->grad, bn->value));
                  }
                  if (bn->requires_grad) {
                    bn->EnsureGrad();
                    bn->grad.AddInPlace(MatMulTransposeA(out->grad, an->value));
                  }
                });
}

Var Add(const Var& a, const Var& b) {
  NodePtr an = a.node(), bn = b.node();
  return MakeOp("ag::Add", clfd::Add(an->value, bn->value), {an, bn}, [an, bn](Node* out) {
    if (an->requires_grad) {
      an->EnsureGrad();
      an->grad.AddInPlace(out->grad);
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      bn->grad.AddInPlace(out->grad);
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  NodePtr an = a.node(), bn = b.node();
  return MakeOp("ag::Sub", clfd::Sub(an->value, bn->value), {an, bn}, [an, bn](Node* out) {
    if (an->requires_grad) {
      an->EnsureGrad();
      an->grad.AddInPlace(out->grad);
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      bn->grad.AddScaled(out->grad, -1.0f);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  NodePtr an = a.node(), bn = b.node();
  return MakeOp("ag::Mul", clfd::Mul(an->value, bn->value), {an, bn}, [an, bn](Node* out) {
    if (an->requires_grad) {
      an->EnsureGrad();
      an->grad.AddInPlace(clfd::Mul(out->grad, bn->value));
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      bn->grad.AddInPlace(clfd::Mul(out->grad, an->value));
    }
  });
}

Var AddScalar(const Var& a, float s) {
  NodePtr an = a.node();
  return MakeOp("ag::AddScalar", clfd::AddScalar(an->value, s), {an}, [an](Node* out) {
    an->EnsureGrad();
    an->grad.AddInPlace(out->grad);
  });
}

Var Scale(const Var& a, float s) {
  NodePtr an = a.node();
  return MakeOp("ag::Scale", clfd::MulScalar(an->value, s), {an}, [an, s](Node* out) {
    an->EnsureGrad();
    an->grad.AddScaled(out->grad, s);
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  NodePtr an = a.node(), bn = bias.node();
  return MakeOp("ag::AddRowBroadcast", clfd::AddRowBroadcast(an->value, bn->value), {an, bn},
                [an, bn](Node* out) {
                  if (an->requires_grad) {
                    an->EnsureGrad();
                    an->grad.AddInPlace(out->grad);
                  }
                  if (bn->requires_grad) {
                    bn->EnsureGrad();
                    for (int r = 0; r < out->grad.rows(); ++r) {
                      const float* grow = out->grad.row(r);
                      for (int c = 0; c < out->grad.cols(); ++c) {
                        bn->grad[c] += grow[c];
                      }
                    }
                  }
                });
}

Var RowScaleConst(const Var& a, const Matrix& col) {
  assert(col.cols() == 1 && col.rows() == a.rows());
  NodePtr an = a.node();
  Matrix value = an->value;
  for (int r = 0; r < value.rows(); ++r) {
    float s = col.at(r, 0);
    float* row = value.row(r);
    for (int c = 0; c < value.cols(); ++c) row[c] *= s;
  }
  return MakeOp("ag::RowScaleConst", std::move(value), {an}, [an, col](Node* out) {
    an->EnsureGrad();
    for (int r = 0; r < out->grad.rows(); ++r) {
      float s = col.at(r, 0);
      const float* grow = out->grad.row(r);
      float* arow = an->grad.row(r);
      for (int c = 0; c < out->grad.cols(); ++c) arow[c] += s * grow[c];
    }
  });
}

Var Exp(const Var& a) {
  NodePtr an = a.node();
  Matrix value = clfd::Exp(an->value);
  return MakeOp("ag::Exp", value, {an}, [an, value](Node* out) {
    an->EnsureGrad();
    an->grad.AddInPlace(clfd::Mul(out->grad, value));
  });
}

Var Log(const Var& a) {
  NodePtr an = a.node();
  return MakeOp("ag::Log", clfd::Log(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      an->grad[i] += out->grad[i] / std::max(an->value[i], 1e-12f);
    }
  });
}

Var Pow(const Var& a, float p) {
  NodePtr an = a.node();
  return MakeOp("ag::Pow", clfd::Pow(an->value, p), {an}, [an, p](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      // d/dx x^p = p x^(p-1); clamp the base so p < 1 stays finite at 0.
      float base = std::max(an->value[i], 1e-12f);
      an->grad[i] += out->grad[i] * p * std::pow(base, p - 1.0f);
    }
  });
}

Var Tanh(const Var& a) {
  NodePtr an = a.node();
  Matrix value = clfd::Tanh(an->value);
  return MakeOp("ag::Tanh", value, {an}, [an, value](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      an->grad[i] += out->grad[i] * (1.0f - value[i] * value[i]);
    }
  });
}

Var Sigmoid(const Var& a) {
  NodePtr an = a.node();
  Matrix value = clfd::Sigmoid(an->value);
  return MakeOp("ag::Sigmoid", value, {an}, [an, value](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      an->grad[i] += out->grad[i] * value[i] * (1.0f - value[i]);
    }
  });
}

Var Relu(const Var& a) {
  NodePtr an = a.node();
  return MakeOp("ag::Relu", clfd::Relu(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      if (an->value[i] > 0.0f) an->grad[i] += out->grad[i];
    }
  });
}

Var LeakyRelu(const Var& a, float slope) {
  NodePtr an = a.node();
  return MakeOp("ag::LeakyRelu", clfd::LeakyRelu(an->value, slope), {an}, [an, slope](Node* out) {
    an->EnsureGrad();
    for (int i = 0; i < out->grad.size(); ++i) {
      an->grad[i] += out->grad[i] * (an->value[i] > 0.0f ? 1.0f : slope);
    }
  });
}

Var SoftmaxRows(const Var& a) {
  NodePtr an = a.node();
  Matrix value = clfd::SoftmaxRows(an->value);
  return MakeOp("ag::SoftmaxRows", value, {an}, [an, value](Node* out) {
    an->EnsureGrad();
    // d x_j = s_j * (g_j - sum_k g_k s_k) per row.
    for (int r = 0; r < value.rows(); ++r) {
      const float* s = value.row(r);
      const float* g = out->grad.row(r);
      float* ar = an->grad.row(r);
      double dot = 0.0;
      for (int c = 0; c < value.cols(); ++c) dot += g[c] * s[c];
      for (int c = 0; c < value.cols(); ++c) {
        ar[c] += s[c] * (g[c] - static_cast<float>(dot));
      }
    }
  });
}

Var SumAll(const Var& a) {
  NodePtr an = a.node();
  Matrix value(1, 1);
  value[0] = clfd::SumAll(an->value);
  return MakeOp("ag::SumAll", std::move(value), {an}, [an](Node* out) {
    an->EnsureGrad();
    float g = out->grad[0];
    for (int i = 0; i < an->grad.size(); ++i) an->grad[i] += g;
  });
}

Var MeanAll(const Var& a) {
  float inv = a.value().size() > 0
                  ? 1.0f / static_cast<float>(a.value().size())
                  : 0.0f;
  return Scale(SumAll(a), inv);
}

Var SumRows(const Var& a) {
  NodePtr an = a.node();
  return MakeOp("ag::SumRows", clfd::SumRows(an->value), {an}, [an](Node* out) {
    an->EnsureGrad();
    for (int r = 0; r < an->grad.rows(); ++r) {
      float g = out->grad.at(r, 0);
      float* row = an->grad.row(r);
      for (int c = 0; c < an->grad.cols(); ++c) row[c] += g;
    }
  });
}

Var ConcatRows(const std::vector<Var>& blocks) {
  assert(!blocks.empty());
  std::vector<Matrix> values;
  std::vector<NodePtr> parents;
  values.reserve(blocks.size());
  for (const Var& b : blocks) {
    values.push_back(b.value());
    parents.push_back(b.node());
  }
  return MakeOp("ag::ConcatRows", clfd::ConcatRows(values), parents, [parents](Node* out) {
    int r = 0;
    for (const NodePtr& p : parents) {
      if (p->requires_grad) {
        p->EnsureGrad();
        for (int pr = 0; pr < p->value.rows(); ++pr) {
          const float* grow = out->grad.row(r + pr);
          float* prow = p->grad.row(pr);
          for (int c = 0; c < p->value.cols(); ++c) prow[c] += grow[c];
        }
      }
      r += p->value.rows();
    }
  });
}

Var SliceRows(const Var& a, int begin, int end) {
  NodePtr an = a.node();
  return MakeOp("ag::SliceRows", clfd::SliceRows(an->value, begin, end), {an},
                [an, begin](Node* out) {
                  an->EnsureGrad();
                  for (int r = 0; r < out->grad.rows(); ++r) {
                    const float* grow = out->grad.row(r);
                    float* arow = an->grad.row(begin + r);
                    for (int c = 0; c < out->grad.cols(); ++c) {
                      arow[c] += grow[c];
                    }
                  }
                });
}

Var ConcatCols(const std::vector<Var>& blocks) {
  assert(!blocks.empty());
  std::vector<Matrix> values;
  std::vector<NodePtr> parents;
  values.reserve(blocks.size());
  for (const Var& b : blocks) {
    values.push_back(b.value());
    parents.push_back(b.node());
  }
  return MakeOp("ag::ConcatCols", clfd::ConcatCols(values), parents,
                [parents](Node* out) {
                  int c0 = 0;
                  for (const NodePtr& p : parents) {
                    if (p->requires_grad) {
                      p->EnsureGrad();
                      for (int r = 0; r < p->value.rows(); ++r) {
                        const float* grow = out->grad.row(r);
                        float* prow = p->grad.row(r);
                        for (int c = 0; c < p->value.cols(); ++c) {
                          prow[c] += grow[c0 + c];
                        }
                      }
                    }
                    c0 += p->value.cols();
                  }
                });
}

Var SliceCols(const Var& a, int begin, int end) {
  NodePtr an = a.node();
  return MakeOp("ag::SliceCols", clfd::SliceCols(an->value, begin, end), {an},
                [an, begin](Node* out) {
                  an->EnsureGrad();
                  for (int r = 0; r < out->grad.rows(); ++r) {
                    const float* grow = out->grad.row(r);
                    float* arow = an->grad.row(r);
                    for (int c = 0; c < out->grad.cols(); ++c) {
                      arow[begin + c] += grow[c];
                    }
                  }
                });
}

Var LstmPackedMatMul(const Var& x, const Var& w) {
  NodePtr xn = x.node(), wn = w.node();
  return MakeOp("ag::LstmPackedMatMul", clfd::MatMul(xn->value, wn->value),
                {xn, wn}, [xn, wn](Node* out) {
                  if (xn->requires_grad) {
                    xn->EnsureGrad();
                    MatMulTransposeBGateBlockedAddInto(out->grad, wn->value,
                                                       &xn->grad);
                  }
                  if (wn->requires_grad) {
                    wn->EnsureGrad();
                    wn->grad.AddInPlace(MatMulTransposeA(xn->value, out->grad));
                  }
                });
}

Var LstmInputProjection(Matrix xcat, const Var& w, int block_rows) {
  NodePtr wn = w.node();
  Matrix value = clfd::MatMul(xcat, wn->value);
  return MakeOp("ag::LstmInputProjection", std::move(value), {wn},
                [wn, x = std::move(xcat), block_rows](Node* out) {
                  wn->EnsureGrad();
                  MatMulTransposeATimeBlockedAddInto(x, out->grad, block_rows,
                                                     &wn->grad);
                });
}

Var LstmGates(const Var& pre, const Var& hc_prev) {
  NodePtr pn = pre.node(), hn = hc_prev.node();
  Matrix hc, acts;
  clfd::LstmGatesForward(pn->value, hn->value, &hc, &acts);
  return MakeOp("ag::LstmGates", std::move(hc), {pn, hn},
                [pn, hn, acts = std::move(acts)](Node* out) {
                  Matrix scratch;
                  Matrix* dpre = nullptr;
                  if (pn->requires_grad) {
                    pn->EnsureGrad();
                    dpre = &pn->grad;
                  } else {
                    scratch = Matrix(pn->value.rows(), pn->value.cols());
                    dpre = &scratch;
                  }
                  Matrix* dhc = nullptr;
                  if (hn->requires_grad) {
                    hn->EnsureGrad();
                    dhc = &hn->grad;
                  }
                  clfd::LstmGatesBackward(out->grad, acts, hn->value, dpre,
                                          dhc);
                });
}

Var NormalizeRows(const Var& a) {
  NodePtr an = a.node();
  Matrix value = an->value;
  std::vector<float> norms(value.rows());
  for (int r = 0; r < value.rows(); ++r) {
    norms[r] = RowNorm(an->value, r);
    float* row = value.row(r);
    for (int c = 0; c < value.cols(); ++c) row[c] /= norms[r];
  }
  return MakeOp("ag::NormalizeRows", std::move(value), {an}, [an, norms](Node* out) {
    an->EnsureGrad();
    // For y = x / |x|: dx = (g - y (g . y)) / |x|.
    for (int r = 0; r < out->grad.rows(); ++r) {
      const float* g = out->grad.row(r);
      const float* x = an->value.row(r);
      float* ar = an->grad.row(r);
      float inv = 1.0f / norms[r];
      double dot = 0.0;
      for (int c = 0; c < out->grad.cols(); ++c) {
        dot += g[c] * x[c] * inv;
      }
      for (int c = 0; c < out->grad.cols(); ++c) {
        ar[c] += inv * (g[c] - static_cast<float>(dot) * x[c] * inv);
      }
    }
  });
}

}  // namespace ag
}  // namespace clfd
